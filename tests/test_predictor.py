"""Section 5 "Speculative Execution": the involuntary-release predictor
tracks lease sites whose leases keep ending involuntarily and stops
honouring them (skipping a lease is always safe -- leases are advisory).
"""

from conftest import make_machine

from repro import CAS, Lease, Load, Release, Work


def hog_site_body(ctx, addr, rounds, site, work=500):
    """A pathological lease site: leases and then overstays until expiry."""
    for _ in range(rounds):
        yield Lease(addr, 100, site=site)
        yield Work(work)           # always exceeds the 100-cycle lease
        yield Release(addr)


def good_site_body(ctx, addr, rounds, site):
    for _ in range(rounds):
        yield Lease(addr, 10_000, site=site)
        v = yield Load(addr)
        yield CAS(addr, v, v + 1)
        yield Release(addr)
        yield Work(20)


def test_predictor_blacklists_bad_site():
    m = make_machine(1, predictor_enabled=True, predictor_min_samples=4,
                     predictor_threshold=0.5)
    addr = m.alloc_var(0)
    m.add_thread(hog_site_body, addr, 20, "hog")
    m.run()
    k = m.counters
    assert k.leases_ignored_by_predictor > 0
    # Once blacklisted, no further involuntary releases accumulate: the
    # total stays close to the sampling minimum.
    assert k.releases_involuntary <= 6


def test_predictor_disabled_by_default():
    m = make_machine(1)
    addr = m.alloc_var(0)
    m.add_thread(hog_site_body, addr, 10, "hog")
    m.run()
    assert m.counters.leases_ignored_by_predictor == 0
    assert m.counters.releases_involuntary == 10


def test_predictor_leaves_good_sites_alone():
    m = make_machine(2, predictor_enabled=True, predictor_min_samples=4)
    addr = m.alloc_var(0)
    m.add_thread(good_site_body, addr, 20, "good")
    m.add_thread(good_site_body, addr, 20, "good")
    m.run()
    assert m.counters.leases_ignored_by_predictor == 0
    assert m.peek(addr) == 40


def test_predictor_is_per_site():
    """Blacklisting one site must not affect another."""
    m = make_machine(2, predictor_enabled=True, predictor_min_samples=4,
                     predictor_threshold=0.5)
    a, b = m.alloc_var(0), m.alloc_var(0)
    m.add_thread(hog_site_body, a, 15, "hog")
    m.add_thread(good_site_body, b, 15, "good")
    m.run()
    mgr0, mgr1 = m.cores[0].lease_mgr, m.cores[1].lease_mgr
    assert mgr0.site_stats["hog"][1] > 0       # involuntary ends recorded
    assert mgr1.site_stats["good"][1] == 0
    assert m.counters.leases_ignored_by_predictor > 0
    assert m.peek(b) == 15


def test_untagged_leases_never_tracked():
    m = make_machine(1, predictor_enabled=True)
    addr = m.alloc_var(0)

    def body(ctx):
        for _ in range(10):
            yield Lease(addr, 100)     # no site
            yield Work(500)
            yield Release(addr)

    m.add_thread(body)
    m.run()
    assert m.cores[0].lease_mgr.site_stats == {}
    assert m.counters.leases_ignored_by_predictor == 0


def test_predictor_speeds_up_victims_of_bad_leases():
    """Skipping hopeless leases removes the dead time they impose on
    *other* threads (the victim finishes earlier; the hog's own local
    compute is unchanged)."""
    def victim_finish(enabled):
        m = make_machine(2, predictor_enabled=enabled,
                         predictor_min_samples=4,
                         prioritize_regular_requests=False)
        addr = m.alloc_var(0)
        # Thread 0 hogs the line with fast-cycling expiring leases;
        # thread 1 increments it and records when it finished (long
        # enough to overlap the post-blacklist phase).
        m.add_thread(hog_site_body, addr, 80, "hog", 150)
        finish = {}

        def worker(ctx):
            for _ in range(60):
                v = yield Load(addr)
                yield CAS(addr, v, v + 1)
                yield Work(30)
            finish["t"] = ctx.machine.now

        m.add_thread(worker)
        m.run()
        return finish["t"]

    assert victim_finish(True) < victim_finish(False)
