"""Schedule perturbation: the ScheduleStrategy hook and its strategies."""

import pytest

from repro.engine import EventQueue, ScheduleStrategy
from repro.check.perturb import (PctStrategy, RandomStrategy, ReplayStrategy,
                                 owner_core, strategy_for_schedule)


def _drain(q):
    out = []
    while (ev := q.pop()) is not None:
        out.append(ev)
    return out


# -- hook basics --------------------------------------------------------------

def test_no_strategy_all_priorities_zero():
    q = EventQueue()
    for i in range(5):
        q.schedule(3, lambda: None)
    assert all(ev.pri == 0 for ev in _drain(q))


def test_default_strategy_is_identity():
    """The base ScheduleStrategy assigns 0 everywhere: same order as none."""
    plain, hooked = EventQueue(), EventQueue(ScheduleStrategy())
    for t in (4, 1, 4, 4, 2, 1):
        plain.schedule(t, lambda: None)
        hooked.schedule(t, lambda: None)
    assert ([(e.time, e.seq) for e in _drain(plain)]
            == [(e.time, e.seq) for e in _drain(hooked)])


def test_strategy_only_reorders_same_timestamp():
    """Nonzero priorities must never move an event across timestamps."""

    class Always9(ScheduleStrategy):
        def priority(self, ev):
            return 9 if ev.seq % 2 else 0

    q = EventQueue(Always9())
    for t in (5, 5, 1, 1, 3, 3):
        q.schedule(t, lambda: None)
    times = [ev.time for ev in _drain(q)]
    assert times == sorted(times)


def test_strategy_reorders_ties_by_priority():
    class BySeqReversed(ScheduleStrategy):
        def priority(self, ev):
            return -ev.seq        # later-scheduled first

    q = EventQueue(BySeqReversed())
    for i in range(6):
        q.schedule(7, lambda: None)
    assert [ev.seq for ev in _drain(q)] == [5, 4, 3, 2, 1, 0]


# -- RandomStrategy / ReplayStrategy ------------------------------------------

def test_random_strategy_is_seed_deterministic():
    def order(seed):
        q = EventQueue(RandomStrategy(seed, rate=0.5))
        for i in range(40):
            q.schedule(2, lambda: None)
        return [ev.seq for ev in _drain(q)]

    assert order(11) == order(11)
    assert order(11) != order(12)


def test_random_strategy_perturbs_some_schedule():
    perturbed = False
    for seed in range(5):
        q = EventQueue(RandomStrategy(seed, rate=0.5))
        for _ in range(30):
            q.schedule(1, lambda: None)
        if [ev.seq for ev in _drain(q)] != list(range(30)):
            perturbed = True
            break
    assert perturbed


def test_replay_reproduces_random_run():
    rand = RandomStrategy(99, rate=0.5)
    q1 = EventQueue(rand)
    for i in range(50):
        q1.schedule(i % 3, lambda: None)
    order1 = [(ev.time, ev.seq) for ev in _drain(q1)]
    assert rand.decisions, "expected some perturbation at rate=0.5"

    q2 = EventQueue(ReplayStrategy(rand.decisions))
    for i in range(50):
        q2.schedule(i % 3, lambda: None)
    assert [(ev.time, ev.seq) for ev in _drain(q2)] == order1


def test_empty_replay_equals_default_order():
    q1, q2 = EventQueue(), EventQueue(ReplayStrategy({}))
    for t in (2, 0, 2, 1, 0):
        q1.schedule(t, lambda: None)
        q2.schedule(t, lambda: None)
    assert ([(e.time, e.seq) for e in _drain(q1)]
            == [(e.time, e.seq) for e in _drain(q2)])


# -- PCT strategy -------------------------------------------------------------

class _Owner:
    def __init__(self, core_id):
        self.core_id = core_id

    def cb(self):
        pass


def test_owner_core_extraction():
    assert owner_core_of(_Owner(3).cb) == 3
    assert owner_core_of(lambda: None) is None


def owner_core_of(fn):
    class _Ev:
        pass
    ev = _Ev()
    ev.fn = fn
    return owner_core(ev)


def test_pct_assigns_stable_per_core_priorities():
    strat = PctStrategy(5, depth=0)
    a, b = _Owner(0), _Owner(1)
    q = EventQueue(strat)
    evs = [q.schedule(1, (a if i % 2 else b).cb) for i in range(8)]
    pris = {owner_core(e): e.pri for e in evs}
    assert set(pris) == {0, 1}
    for e in evs:                     # same core -> same priority throughout
        assert e.pri == pris[owner_core(e)]


def test_pct_leaves_unowned_events_alone():
    q = EventQueue(PctStrategy(5, depth=3))
    ev = q.schedule(1, lambda: None)
    assert ev.pri == 0


def test_pct_is_seed_deterministic():
    def pris(seed):
        strat = PctStrategy(seed, depth=2, horizon=16)
        q = EventQueue(strat)
        owners = [_Owner(i % 4) for i in range(4)]
        return [q.schedule(1, owners[i % 4].cb).pri for i in range(32)]

    assert pris(3) == pris(3)


def test_strategy_for_schedule_alternates_and_derives():
    s1 = strategy_for_schedule(7, 1)
    s2 = strategy_for_schedule(7, 2)
    assert isinstance(s1, RandomStrategy)
    assert isinstance(s2, PctStrategy)
    # Deterministic derivation: same (campaign_seed, index) -> same seed.
    assert strategy_for_schedule(7, 1).seed == s1.seed
    assert strategy_for_schedule(8, 1).seed != s1.seed


# -- satellite: compaction boundary -------------------------------------------

def test_compaction_preserves_strategy_order():
    """Cancelling enough events to trigger compaction must keep the
    (time, pri, seq) order a strategy established, and cancellation of
    events that moved during compaction must still work."""

    class Zigzag(ScheduleStrategy):
        def priority(self, ev):
            return (7 - ev.seq) % 5

    q = EventQueue(Zigzag())
    events = [q.schedule(t % 4, lambda: None) for t in range(400)]
    for ev in events[:260]:
        q.cancel(ev)                 # dead > live: forces compaction
    assert q.heap_size < 400         # compaction actually happened
    survivors = events[260:]
    # Scheduling and cancelling across the compaction boundary still works.
    late = q.schedule(0, lambda: None)
    q.cancel(survivors[0])
    out = [(ev.time, ev.pri, ev.seq) for ev in _drain(q)]
    expected = sorted((ev.time, ev.pri, ev.seq)
                      for ev in survivors[1:] + [late])
    assert out == expected


def test_strategy_runs_once_per_schedule_despite_compaction():
    """Compaction must not re-invoke the strategy (which would corrupt a
    replay's decision alignment or consume extra randomness)."""
    calls = []

    class Counting(ScheduleStrategy):
        def priority(self, ev):
            calls.append(ev.seq)
            return 1

    q = EventQueue(Counting())
    events = [q.schedule(1, lambda: None) for _ in range(300)]
    for ev in events[:250]:
        q.cancel(ev)
    q.schedule(2, lambda: None)
    assert calls == list(range(301))   # exactly one call per schedule()
