"""Workload key-distribution generators."""

import random
from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.workloads.generators import (HotSetKeys, UniformKeys, ZipfKeys,
                                        key_stream, op_mix)


class _CyclingRolls:
    """random.Random stand-in whose ``randrange(n)`` cycles 0..n-1, so a
    hundred op_mix draws visit every roll exactly once."""

    def __init__(self) -> None:
        self._i = 0

    def randrange(self, n: int) -> int:
        v = self._i % n
        self._i += 1
        return v


class _FixedRandom:
    """random.Random stand-in with a pinned ``random()`` value."""

    def __init__(self, value: float) -> None:
        self._value = value

    def random(self) -> float:
        return self._value

    def randrange(self, n: int) -> int:
        return int(self._value * n) % n


class TestUniform:
    def test_in_range(self):
        dist = UniformKeys(10)
        rng = random.Random(1)
        assert all(0 <= dist.sample(rng) < 10 for _ in range(200))

    def test_covers_range(self):
        dist = UniformKeys(8)
        rng = random.Random(2)
        seen = {dist.sample(rng) for _ in range(500)}
        assert seen == set(range(8))

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            UniformKeys(0)


class TestZipf:
    def test_in_range(self):
        dist = ZipfKeys(100, 1.2)
        rng = random.Random(3)
        assert all(0 <= dist.sample(rng) < 100 for _ in range(500))

    def test_skew_prefers_small_keys(self):
        dist = ZipfKeys(1000, 1.2)
        rng = random.Random(4)
        counts = Counter(dist.sample(rng) for _ in range(5000))
        low = sum(v for k, v in counts.items() if k < 10)
        high = sum(v for k, v in counts.items() if k >= 500)
        assert low > high * 3

    def test_s_zero_is_roughly_uniform(self):
        dist = ZipfKeys(10, 0.0)
        rng = random.Random(5)
        counts = Counter(dist.sample(rng) for _ in range(10_000))
        assert min(counts.values()) > 600    # ~1000 each

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            ZipfKeys(10, -1)

    @given(st.integers(1, 50), st.floats(0, 3), st.integers(0, 100))
    def test_property_always_in_range(self, n, s, seed):
        dist = ZipfKeys(n, s)
        rng = random.Random(seed)
        for _ in range(20):
            assert 0 <= dist.sample(rng) < n

    def test_larger_s_concentrates_more_mass(self):
        mild, heavy = ZipfKeys(200, 0.8), ZipfKeys(200, 2.0)
        r1, r2 = random.Random(10), random.Random(10)
        mild_hits = sum(mild.sample(r1) == 0 for _ in range(4000))
        heavy_hits = sum(heavy.sample(r2) == 0 for _ in range(4000))
        assert heavy_hits > mild_hits * 2

    def test_cdf_boundary_draw_stays_in_range(self):
        # rng.random() in [0, 1); a draw just under 1.0 must land on the
        # last key, not fall off the CDF (the cdf[-1] = 1.0 guard).
        dist = ZipfKeys(7, 1.3)
        for value in (0.0, 1.0 - 2 ** -53):
            assert 0 <= dist.sample(_FixedRandom(value)) < 7

    def test_fixed_seed_is_deterministic(self):
        dist1, dist2 = ZipfKeys(50, 1.2), ZipfKeys(50, 1.2)
        r1, r2 = random.Random(42), random.Random(42)
        assert ([dist1.sample(r1) for _ in range(100)]
                == [dist2.sample(r2) for _ in range(100)])


class TestHotSet:
    def test_in_range(self):
        dist = HotSetKeys(20, frac=0.9, size=4, shift_every=8)
        rng = random.Random(11)
        assert all(0 <= dist.sample(rng) < 20 for _ in range(300))

    def test_hot_window_slides(self):
        # frac=1.0: every draw is in the current window, which advances
        # by `size` every `shift_every` draws.
        dist = HotSetKeys(16, frac=1.0, size=4, shift_every=10)
        rng = random.Random(12)
        first = [dist.sample(rng) for _ in range(10)]
        second = [dist.sample(rng) for _ in range(10)]
        assert all(0 <= k < 4 for k in first)
        assert all(4 <= k < 8 for k in second)

    def test_wraps_modulo_key_range(self):
        dist = HotSetKeys(8, frac=1.0, size=4, shift_every=1)
        rng = random.Random(13)
        windows = {dist.sample(rng) // 4 for _ in range(8)}
        assert windows == {0, 1}

    def test_cold_draws_cover_whole_range(self):
        dist = HotSetKeys(10, frac=0.0, size=2, shift_every=4)
        rng = random.Random(14)
        seen = {dist.sample(rng) for _ in range(500)}
        assert seen == set(range(10))

    def test_validation(self):
        with pytest.raises(ValueError):
            HotSetKeys(0)
        with pytest.raises(ValueError):
            HotSetKeys(10, frac=1.5)
        with pytest.raises(ValueError):
            HotSetKeys(10, size=0)
        with pytest.raises(ValueError):
            HotSetKeys(10, shift_every=0)


class TestOpMix:
    def test_zero_updates_all_searches(self):
        rng = random.Random(6)
        assert all(op_mix(rng, 0) == "contains" for _ in range(100))

    def test_twenty_percent_updates(self):
        rng = random.Random(7)
        ops = Counter(op_mix(rng, 20) for _ in range(10_000))
        assert 0.15 < (ops["insert"] + ops["delete"]) / 10_000 < 0.25
        assert abs(ops["insert"] - ops["delete"]) < 500

    def test_hundred_percent_updates(self):
        rng = random.Random(8)
        ops = Counter(op_mix(rng, 100) for _ in range(1000))
        assert ops["contains"] == 0

    # Regression: odd update_pct used to split the update share unevenly
    # depending on the call site's rounding; the contract is now exactly
    # ceil(pct/2) inserts and floor(pct/2) deletes per 100 rolls.
    @pytest.mark.parametrize("pct", [1, 5, 33, 99])
    def test_odd_percentages_split_deterministically(self, pct):
        rolls = _CyclingRolls()
        ops = Counter(op_mix(rolls, pct) for _ in range(100))
        assert ops["insert"] == (pct + 1) // 2
        assert ops["delete"] == pct // 2
        assert ops["contains"] == 100 - pct

    @given(st.integers(0, 100))
    def test_property_update_share_is_exact(self, pct):
        rolls = _CyclingRolls()
        ops = Counter(op_mix(rolls, pct) for _ in range(100))
        assert ops["insert"] + ops["delete"] == pct


def test_key_stream():
    rng = random.Random(9)
    stream = key_stream(UniformKeys(5), rng)
    vals = [next(stream) for _ in range(50)]
    assert all(0 <= v < 5 for v in vals)
