"""Workload key-distribution generators."""

import random
from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.workloads.generators import (UniformKeys, ZipfKeys, key_stream,
                                        op_mix)


class TestUniform:
    def test_in_range(self):
        dist = UniformKeys(10)
        rng = random.Random(1)
        assert all(0 <= dist.sample(rng) < 10 for _ in range(200))

    def test_covers_range(self):
        dist = UniformKeys(8)
        rng = random.Random(2)
        seen = {dist.sample(rng) for _ in range(500)}
        assert seen == set(range(8))

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            UniformKeys(0)


class TestZipf:
    def test_in_range(self):
        dist = ZipfKeys(100, 1.2)
        rng = random.Random(3)
        assert all(0 <= dist.sample(rng) < 100 for _ in range(500))

    def test_skew_prefers_small_keys(self):
        dist = ZipfKeys(1000, 1.2)
        rng = random.Random(4)
        counts = Counter(dist.sample(rng) for _ in range(5000))
        low = sum(v for k, v in counts.items() if k < 10)
        high = sum(v for k, v in counts.items() if k >= 500)
        assert low > high * 3

    def test_s_zero_is_roughly_uniform(self):
        dist = ZipfKeys(10, 0.0)
        rng = random.Random(5)
        counts = Counter(dist.sample(rng) for _ in range(10_000))
        assert min(counts.values()) > 600    # ~1000 each

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            ZipfKeys(10, -1)

    @given(st.integers(1, 50), st.floats(0, 3), st.integers(0, 100))
    def test_property_always_in_range(self, n, s, seed):
        dist = ZipfKeys(n, s)
        rng = random.Random(seed)
        for _ in range(20):
            assert 0 <= dist.sample(rng) < n


class TestOpMix:
    def test_zero_updates_all_searches(self):
        rng = random.Random(6)
        assert all(op_mix(rng, 0) == "contains" for _ in range(100))

    def test_twenty_percent_updates(self):
        rng = random.Random(7)
        ops = Counter(op_mix(rng, 20) for _ in range(10_000))
        assert 0.15 < (ops["insert"] + ops["delete"]) / 10_000 < 0.25
        assert abs(ops["insert"] - ops["delete"]) < 500

    def test_hundred_percent_updates(self):
        rng = random.Random(8)
        ops = Counter(op_mix(rng, 100) for _ in range(1000))
        assert ops["contains"] == 0


def test_key_stream():
    rng = random.Random(9)
    stream = key_stream(UniformKeys(5), rng)
    vals = [next(stream) for _ in range(50)]
    assert all(0 <= v < 5 for v in vals)
