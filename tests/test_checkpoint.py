"""Checkpoint/restore (``repro.state``): roundtrip bit-identity, lease/pin
preservation, the ``repro-ckpt/1`` container's refusal rules, and
prefix-restore shrinking."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

import repro.check.campaign as campaign
from repro.check.perturb import PctStrategy, RandomStrategy, ReplayStrategy
from repro.config import MachineConfig
from repro.core.machine import Machine
from repro.errors import CheckpointError, CheckpointMismatch, SimulationError
from repro.state import (CKPT_SCHEMA, checkpoint_cell_key, load_checkpoint,
                         restore_checkpoint, save_checkpoint)
from repro.structures import MichaelScottQueue, TreiberStack


def _config(*, leases: bool, protocol: str = "msi", faults: str = "",
            seed: int = 1) -> MachineConfig:
    cfg = MachineConfig(num_cores=4, protocol=protocol, fault_spec=faults,
                        seed=seed)
    return replace(cfg, lease=replace(cfg.lease, enabled=leases))


def _build_treiber(cfg: MachineConfig, strategy=None) -> Machine:
    m = Machine(cfg, schedule_strategy=strategy)
    s = TreiberStack(m)
    s.prefill(range(16))
    for _ in range(4):
        m.add_thread(s.update_worker, 12)
    return m


def _build_multilease(cfg: MachineConfig) -> Machine:
    m = Machine(cfg)
    q = MichaelScottQueue(m, variant="multi")
    q.prefill(range(32))
    for _ in range(4):
        m.add_thread(q.update_worker, 10)
    return m


def _strategy(kind: str):
    return {
        "none": lambda: None,
        "random": lambda: RandomStrategy(7),
        "pct": lambda: PctStrategy(7),
        "replay": lambda: ReplayStrategy({3: 2, 40: 1, 77: 3}),
    }[kind]()


# ---------------------------------------------------------------------------
# Roundtrip bit-identity across the feature grid
# ---------------------------------------------------------------------------

GRID = [
    # (leases, protocol, faults, strategy, cut)
    (False, "msi", "", "none", 300),
    (True, "msi", "", "none", 300),
    (True, "mesi", "", "none", 137),
    (False, "mesi", "", "random", 300),
    (True, "msi", "net_jitter:p=0.2,max=6", "none", 400),
    (True, "mesi", "dir_nack:p=0.1;timer_skew:4", "random", 300),
    (True, "msi", "dir_nack:p=0.05", "pct", 800),
    (True, "msi", "", "replay", 137),
]


@pytest.mark.parametrize("leases,protocol,faults,strategy,cut", GRID,
                         ids=lambda v: str(v))
def test_roundtrip_is_bit_identical(leases, protocol, faults, strategy, cut):
    """Snapshot mid-run, restore into a fresh machine, run both to the end:
    the checkpointed run, the restored run, and an uninterrupted run must
    produce field-for-field identical RunResults."""
    cfg = _config(leases=leases, protocol=protocol, faults=faults)

    m1 = _build_treiber(cfg, _strategy(strategy))
    m1.enable_checkpointing()
    m1.run(until=cut)
    # JSON round-trip the state tree: what restores on disk restores here.
    state = json.loads(json.dumps(m1.state_dict()))

    m2 = _build_treiber(cfg, _strategy(strategy))
    m2.load_state(state)
    m1.run()
    m2.run()

    m3 = _build_treiber(cfg, _strategy(strategy))
    m3.run()

    r1, r2, r3 = m1.result(), m2.result(), m3.result()
    assert r2 == r3, "restored run diverged from the uninterrupted run"
    assert r1 == r3, "taking a snapshot perturbed the run"
    # Field-for-field, not just __eq__: catches a future non-compared field.
    import dataclasses

    assert dataclasses.asdict(r2) == dataclasses.asdict(r3)
    assert m1.counters.checkpoints_saved == 1
    assert m2.counters.checkpoints_restored == 1
    # The bookkeeping counters stay out of RunResult comparisons.
    assert "checkpoints_saved" not in r2.counters


def test_checkpoint_counters_not_in_snapshot_delta():
    cfg = _config(leases=True)
    m = _build_treiber(cfg)
    m.enable_checkpointing()
    m.run(until=200)
    before = m.counters.snapshot()
    assert "checkpoints_saved" not in before
    m.state_dict()
    assert m.counters.checkpoints_saved == 1


# ---------------------------------------------------------------------------
# Pin refcounts and granted-lease identity (the PR 4 bug surface)
# ---------------------------------------------------------------------------

def _snapshot_with_live_leases(build, cfg):
    """Run machines at increasing cuts until the snapshot catches at least
    one granted lease and one pinned line; returns (machine, state)."""
    for cut in (120, 200, 300, 450, 700, 1000, 1500, 2200):
        m = build(cfg)
        m.enable_checkpointing()
        m.run(until=cut)
        has_lease = any(e.granted
                        for core in m.cores
                        for e in core.lease_mgr.table.entries())
        has_pin = any(core.memunit.l1._pinned for core in m.cores)
        if has_lease and has_pin and m._live_threads:
            return m, cut, json.loads(json.dumps(m.state_dict()))
    pytest.fail("no cut point caught a granted lease mid-run")


def test_restore_preserves_pin_refcounts_and_lease_identity():
    cfg = _config(leases=True)
    m1, cut, state = _snapshot_with_live_leases(_build_treiber, cfg)

    m2 = _build_treiber(cfg)
    m2.load_state(state)

    for c1, c2 in zip(m1.cores, m2.cores):
        # L1 pin refcounts survive the roundtrip exactly.
        assert c2.memunit.l1._pinned == c1.memunit.l1._pinned
        e1s = c1.lease_mgr.table.entries()
        e2s = c2.lease_mgr.table.entries()
        assert [(e.line, e.duration, e.granted, e.started, e.dead)
                for e in e2s] \
            == [(e.line, e.duration, e.granted, e.started, e.dead)
                for e in e1s]
        for e in e2s:
            if e.expiry_event is not None:
                # Granted-lease identity: the expiry event in the restored
                # queue must reference THIS entry object (removal is
                # by identity; a duplicated entry would never cancel).
                assert e.expiry_event.args[0] is e
                assert any(ev is e.expiry_event
                           for ev in m2.sim.queue._heap)
    # And the restored machine still finishes identically.
    m2.run()
    m3 = _build_treiber(cfg)
    m3.run()
    assert m2.result() == m3.result()


def test_restore_preserves_multilease_group_identity():
    cfg = _config(leases=True)
    m1, cut, state = _snapshot_with_live_leases(_build_multilease, cfg)
    m2 = _build_multilease(cfg)
    m2.load_state(state)
    groups_seen = 0
    for core in m2.cores:
        by_group = {}
        for e in core.lease_mgr.table.entries():
            if e.group is not None:
                by_group.setdefault(id(e.group), []).append(e)
        for members in by_group.values():
            groups_seen += 1
            group = members[0].group
            for e in members:
                assert e.group is group, \
                    "multilease group object duplicated on restore"
                assert e.line in group.lines
    m2.run()
    m3 = _build_multilease(cfg)
    m3.run()
    assert m2.result() == m3.result()
    assert groups_seen >= 0  # group may have drained; identity held if any


# ---------------------------------------------------------------------------
# repro-ckpt/1 container: save/load/refusal
# ---------------------------------------------------------------------------

def test_checkpoint_file_roundtrip(tmp_path):
    cfg = _config(leases=True)
    m1 = _build_treiber(cfg)
    m1.enable_checkpointing()
    m1.run(until=300)
    path = tmp_path / "ckpt.json"
    cell = {"bench": "treiber", "num_threads": 4, "kwargs": {}}
    doc = save_checkpoint(m1, str(path), cell=cell)
    assert doc["format"] == "repro-ckpt/1"
    assert doc["cell"] == cell

    loaded = load_checkpoint(str(path))
    m2 = _build_treiber(cfg)
    cycle = restore_checkpoint(m2, loaded, cell=cell)
    assert cycle == doc["cycle"]
    m1.run()
    m2.run()
    assert m2.result() == m1.result()


def test_checkpoint_refuses_mismatched_config(tmp_path):
    m1 = _build_treiber(_config(leases=True, seed=1))
    m1.enable_checkpointing()
    m1.run(until=200)
    path = tmp_path / "ckpt.json"
    save_checkpoint(m1, str(path))
    doc = load_checkpoint(str(path))

    m_seed = _build_treiber(_config(leases=True, seed=2))
    with pytest.raises(CheckpointMismatch, match="seed"):
        restore_checkpoint(m_seed, doc)

    m_proto = _build_treiber(_config(leases=True, protocol="mesi"))
    with pytest.raises(CheckpointMismatch, match="refusing"):
        restore_checkpoint(m_proto, doc)

    m_cell = _build_treiber(_config(leases=True, seed=1))
    doc_cell = dict(doc, cell={"bench": "other", "num_threads": 2,
                               "kwargs": {}})
    with pytest.raises(CheckpointMismatch, match="cell"):
        restore_checkpoint(m_cell, doc_cell,
                           cell={"bench": "treiber", "num_threads": 4,
                                 "kwargs": {}})


def test_checkpoint_refuses_wrong_schema(tmp_path):
    m1 = _build_treiber(_config(leases=True))
    m1.enable_checkpointing()
    m1.run(until=200)
    path = tmp_path / "ckpt.json"
    save_checkpoint(m1, str(path))
    doc = load_checkpoint(str(path))
    doc["schema"] = CKPT_SCHEMA + 1
    m2 = _build_treiber(_config(leases=True))
    with pytest.raises(CheckpointMismatch, match="schema"):
        restore_checkpoint(m2, doc)


def test_load_checkpoint_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("not json at all")
    with pytest.raises(CheckpointError, match="not a checkpoint"):
        load_checkpoint(str(bad))
    other = tmp_path / "other.json"
    other.write_text(json.dumps({"format": "something-else/9"}))
    with pytest.raises(CheckpointError, match="unsupported"):
        load_checkpoint(str(other))
    partial = tmp_path / "partial.json"
    partial.write_text(json.dumps({"format": "repro-ckpt/1", "schema": 1}))
    with pytest.raises(CheckpointError, match="missing"):
        load_checkpoint(str(partial))


def test_cell_key_distinguishes_cells_and_configs():
    cfg = _config(leases=True)
    cell_a = {"bench": "treiber", "num_threads": 4, "kwargs": {}}
    cell_b = {"bench": "treiber", "num_threads": 8, "kwargs": {}}
    assert checkpoint_cell_key(cfg, cell_a) == checkpoint_cell_key(cfg, cell_a)
    assert checkpoint_cell_key(cfg, cell_a) != checkpoint_cell_key(cfg, cell_b)
    assert checkpoint_cell_key(cfg, cell_a) \
        != checkpoint_cell_key(_config(leases=False), cell_a)


def test_state_dict_requires_enabled_checkpointing():
    m = _build_treiber(_config(leases=True))
    m.run(until=100)
    with pytest.raises(CheckpointError):
        m.state_dict()


def test_enable_checkpointing_rejects_started_machine():
    m = _build_treiber(_config(leases=True))
    m.run(until=100)
    with pytest.raises(SimulationError):
        m.enable_checkpointing()


def test_load_state_requires_fresh_machine():
    cfg = _config(leases=True)
    m1 = _build_treiber(cfg)
    m1.enable_checkpointing()
    m1.run(until=200)
    state = m1.state_dict()
    m2 = _build_treiber(cfg)
    m2.run(until=50)
    with pytest.raises(CheckpointError, match="freshly built"):
        m2.load_state(state)


# ---------------------------------------------------------------------------
# Prefix-restore shrinking
# ---------------------------------------------------------------------------

def test_shrink_prefix_restore_same_minimal_repro(monkeypatch):
    """ddmin with prefix-checkpointing must return the same minimal repro
    as the restart-from-zero path while replaying fewer cycles."""
    target = campaign.resolve_target("treiber")
    variant, base_cfg = target.configs[1]
    cfg = replace(base_cfg, seed=1234)

    rec = campaign.run_once(target, variant, cfg, RandomStrategy(5, rate=0.4))
    assert rec.ok
    full = dict(rec.decisions)
    keys = sorted(full)
    assert len(keys) >= 8
    culprits = {keys[len(keys) // 2], keys[-2]}

    # Synthetic oracle: a run "fails" iff both culprit decisions applied.
    real_run_once = campaign.run_once

    def fake_run_once(target, variant, cfg, strategy, **kw):
        out = real_run_once(target, variant, cfg, strategy, **kw)
        if culprits <= set(out.decisions):
            out.ok = False
            out.kind = "synthetic"
        return out

    monkeypatch.setattr(campaign, "run_once", fake_run_once)

    stats_off: dict = {}
    shrunk_off, runs_off = campaign.shrink_failure(
        target, variant, cfg, dict(full), checkpoint_every=None,
        stats=stats_off)
    stats_on: dict = {}
    shrunk_on, runs_on = campaign.shrink_failure(
        target, variant, cfg, dict(full), checkpoint_every=256,
        stats=stats_on)

    assert set(shrunk_on) == culprits
    assert shrunk_on == shrunk_off, \
        "prefix-restore changed the minimal repro"
    assert stats_on["restores"] > 0, "prefix restore never engaged"
    assert stats_on["cycles_replayed"] < stats_off["cycles_replayed"], \
        "prefix-restore did not save replayed cycles"
    assert stats_on["cycles_saved"] > 0


def test_run_once_restore_from_checkpoint_matches():
    """run_once with restore_from resumes to the same outcome as a full
    replay of the same decisions."""
    target = campaign.resolve_target("treiber")
    variant, base_cfg = target.configs[1]
    cfg = replace(base_cfg, seed=99)

    strat = RandomStrategy(3, rate=0.3)
    ckpts: list = []
    full = campaign.run_once(target, variant, cfg, strat,
                             checkpoint_every=512, checkpoints=ckpts)
    assert ckpts, "no checkpoints were recorded"
    wm, state = ckpts[0]

    replayed = campaign.run_once(target, variant, cfg,
                                 ReplayStrategy(dict(full.decisions)))
    resumed = campaign.run_once(target, variant, cfg,
                                ReplayStrategy(dict(full.decisions)),
                                restore_from=state)
    assert resumed.ok == replayed.ok
    assert resumed.decisions == replayed.decisions
    assert resumed.cycles == replayed.cycles
