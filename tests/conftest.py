"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import Machine, MachineConfig, LeaseConfig


def make_machine(num_cores: int = 4, *, leases: bool = True,
                 seed: int = 1, **lease_kw) -> Machine:
    """A small machine with sane test defaults."""
    cfg = MachineConfig(
        num_cores=num_cores,
        lease=LeaseConfig(enabled=leases, **lease_kw),
        seed=seed,
        max_events=20_000_000,
        max_cycles=200_000_000,
    )
    return Machine(cfg)


@pytest.fixture
def machine() -> Machine:
    return make_machine()


@pytest.fixture
def machine1() -> Machine:
    return make_machine(1)
