"""Wing&Gong linearizability checker + sequential models."""

import pytest

from repro.check.history import OpRecord
from repro.check.linearize import check_history
from repro.check.models import (CounterModel, ModelError, PQModel,
                                QueueModel, SetModel, StackModel)

_IDX = [0]


def R(tid, op, args, result, inv, resp):
    _IDX[0] += 1
    return OpRecord(index=_IDX[0], tid=tid, core=tid, op=op, args=args,
                    result=result, invoked=inv, responded=resp)


# -- models -------------------------------------------------------------------

def test_stack_model_lifo():
    m = StackModel([1, 2])
    assert m.apply("push", (3,)) is None
    assert m.apply("pop", ()) == 3
    assert m.apply("pop", ()) == 2
    assert m.apply("pop", ()) == 1
    assert m.apply("pop", ()) is None


def test_queue_model_fifo():
    m = QueueModel([1, 2])
    m.apply("enqueue", (3,))
    assert [m.apply("dequeue", ()) for _ in range(4)] == [1, 2, 3, None]


def test_pq_model_min_order():
    m = PQModel([5, 1])
    m.apply("insert", (3,))
    assert [m.apply("delete_min", ()) for _ in range(4)] == [1, 3, 5, None]


def test_counter_model_returns_pre_increment():
    m = CounterModel()
    assert [m.apply("inc", ()) for _ in range(3)] == [0, 1, 2]
    assert m.apply("read", ()) == 3


def test_set_model_membership_results():
    m = SetModel([4])
    assert m.apply("insert", (4,)) is False
    assert m.apply("insert", (5,)) is True
    assert m.apply("contains", (5,)) is True
    assert m.apply("delete", (5,)) is True
    assert m.apply("delete", (5,)) is False


def test_models_copy_is_independent():
    m = StackModel([1])
    m2 = m.copy()
    m2.apply("pop", ())
    assert m.snapshot() == (1,) and m2.snapshot() == ()


def test_model_rejects_unknown_op():
    with pytest.raises(ModelError):
        StackModel().apply("dequeue", ())


# -- checker: positives -------------------------------------------------------

def test_empty_history_is_linearizable():
    res = check_history([], StackModel)
    assert res.ok and res.decided


def test_sequential_history_linearizable():
    recs = [R(0, "push", (1,), None, 0, 10),
            R(0, "push", (2,), None, 20, 30),
            R(0, "pop", (), 2, 40, 50),
            R(0, "pop", (), 1, 60, 70)]
    res = check_history(recs, StackModel)
    assert res.ok and res.decided
    assert [r.op for r in res.order] == ["push", "push", "pop", "pop"]


def test_concurrent_reorder_found():
    """pop()->2 overlapping push(2) is only legal if the push linearizes
    first; the checker must find that order."""
    recs = [R(0, "push", (1,), None, 0, 10),
            R(1, "push", (2,), None, 20, 40),
            R(0, "pop", (), 2, 20, 40)]
    res = check_history(recs, StackModel)
    assert res.ok
    assert [r.args or r.result for r in res.order][:2] == [(1,), (2,)]


# -- checker: negatives -------------------------------------------------------

def test_duplicate_pop_not_linearizable():
    recs = [R(0, "push", (7,), None, 0, 10),
            R(0, "pop", (), 7, 20, 30),
            R(1, "pop", (), 7, 20, 30)]
    res = check_history(recs, StackModel)
    assert not res.ok and res.decided


def test_real_time_order_enforced():
    """Non-overlapping ops cannot be reordered: pop()->1 after push(2)
    completed is a LIFO violation even though pop()->1 would have been
    legal earlier."""
    recs = [R(0, "push", (1,), None, 0, 10),
            R(0, "push", (2,), None, 20, 30),
            R(1, "pop", (), 1, 40, 50)]
    res = check_history(recs, StackModel)
    assert not res.ok and res.decided


def test_fifo_violation_rejected():
    recs = [R(0, "enqueue", (1,), None, 0, 10),
            R(0, "enqueue", (2,), None, 20, 30),
            R(1, "dequeue", (), 2, 40, 50)]
    res = check_history(recs, QueueModel)
    assert not res.ok


def test_counter_duplicate_ticket_rejected():
    recs = [R(0, "inc", (), 0, 0, 10),
            R(1, "inc", (), 0, 0, 10)]
    assert not check_history(recs, CounterModel).ok
    recs = [R(0, "inc", (), 0, 0, 10),
            R(1, "inc", (), 1, 0, 10)]
    assert check_history(recs, CounterModel).ok


def test_value_from_nowhere_rejected():
    recs = [R(0, "pop", (), 42, 0, 10)]
    res = check_history(recs, StackModel)
    assert not res.ok
    assert "pop" in res.reason


# -- final-state observation --------------------------------------------------

def test_final_state_catches_lost_update():
    """A pop that returned a value but never removed it: the history alone
    linearizes, the final-state observation refutes it."""
    recs = [R(0, "push", (1,), None, 0, 10),
            R(0, "pop", (), 1, 20, 30)]
    assert check_history(recs, StackModel).ok
    assert check_history(recs, StackModel, final_state=()).ok
    res = check_history(recs, StackModel, final_state=(1,))
    assert not res.ok and res.decided
    assert "final state" in res.reason


def test_final_state_disambiguates_witness():
    """Two overlapping pushes: the final stack order reveals which
    linearization actually happened, and both are acceptable histories."""
    recs = [R(0, "push", (1,), None, 0, 10),
            R(1, "push", (2,), None, 0, 10)]
    assert check_history(recs, StackModel, final_state=(1, 2)).ok
    assert check_history(recs, StackModel, final_state=(2, 1)).ok
    assert not check_history(recs, StackModel, final_state=(1,)).ok


def test_empty_history_with_wrong_final_state():
    assert not check_history([], lambda: StackModel([1]),
                             final_state=()).ok


# -- budget -------------------------------------------------------------------

def test_state_budget_yields_inconclusive():
    recs = [R(t, "contains", (5,), False, 0, 100) for t in range(12)]
    res = check_history(recs, SetModel, max_states=5)
    assert res.ok and not res.decided
    assert "budget" in res.reason


def test_overlong_history_is_inconclusive():
    recs = [R(0, "inc", (), i, 2 * i, 2 * i + 1) for i in range(70)]
    res = check_history(recs, CounterModel)
    assert res.ok and not res.decided
