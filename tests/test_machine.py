"""Machine façade: thread management, results, determinism, budgets."""

import pytest

from conftest import make_machine

from repro import (Load, Machine, MachineConfig, SimulationError,
                   SimulationTimeout, Store, Work)


class TestThreads:
    def test_one_thread_per_core(self):
        m = make_machine(2)

        def body(ctx):
            yield Work(1)

        m.add_thread(body)
        m.add_thread(body)
        with pytest.raises(SimulationError):
            m.add_thread(body)

    def test_explicit_core_placement(self):
        m = make_machine(3)
        seen = []

        def body(ctx):
            seen.append(ctx.core_id)
            yield Work(1)

        m.add_thread(body, core=2)
        m.run()
        assert seen == [2]

    def test_core_conflict_rejected(self):
        m = make_machine(2)

        def body(ctx):
            yield Work(1)

        m.add_thread(body, core=0)
        with pytest.raises(SimulationError):
            m.add_thread(body, core=0)

    def test_non_generator_body_rejected(self):
        m = make_machine(1)

        def not_a_gen(ctx):
            return 42

        with pytest.raises(SimulationError):
            m.add_thread(not_a_gen)

    def test_thread_return_value_captured(self):
        m = make_machine(1)

        def body(ctx):
            yield Work(1)
            return "finished"

        h = m.add_thread(body)
        m.run()
        assert h.done
        assert h.result == "finished"

    def test_yielding_garbage_raises(self):
        m = make_machine(1)

        def body(ctx):
            yield "not an instruction"

        m.add_thread(body)
        with pytest.raises(SimulationError):
            m.run()


class TestResults:
    def test_result_fields(self):
        m = make_machine(2)
        addr = m.alloc_var(0)

        def body(ctx):
            for _ in range(5):
                yield Store(addr, 1)
            ctx.machine.counters.note_op(ctx.core_id)

        m.add_thread(body)
        m.add_thread(body)
        m.run()
        r = m.result("demo", extra={"tag": 1})
        assert r.num_threads == 2
        assert r.ops == 2
        assert r.cycles == m.now
        assert r.throughput_ops_per_sec > 0
        assert r.energy_nj_per_op > 0
        assert r.extra["tag"] == 1
        row = r.row()
        assert row["name"] == "demo"
        assert "mops_per_sec" in row

    def test_per_core_ops(self):
        m = make_machine(2)

        def body(ctx):
            yield Work(1)
            ctx.machine.counters.note_op(ctx.core_id)

        m.add_thread(body)
        m.add_thread(body)
        m.run()
        assert m.counters.per_core_ops == {0: 1, 1: 1}


class TestDeterminism:
    def _run(self, seed):
        m = make_machine(4, seed=seed)
        addr = m.alloc_var(0)

        def body(ctx):
            import repro
            for i in range(20):
                v = yield Load(addr)
                yield Store(addr, v + ctx.rng.randrange(10))
                yield Work(ctx.rng.randrange(1, 20))

        for _ in range(4):
            m.add_thread(body)
        cycles = m.run()
        return cycles, m.peek(addr), m.counters.messages

    def test_same_seed_same_everything(self):
        assert self._run(7) == self._run(7)

    def test_different_seed_differs(self):
        assert self._run(7) != self._run(8)


class TestBudgets:
    def test_livelock_hits_event_budget(self):
        cfg = MachineConfig(num_cores=1, max_events=5_000)
        m = Machine(cfg)

        def spinner(ctx):
            while True:
                yield Work(1)

        m.add_thread(spinner)
        with pytest.raises(SimulationTimeout):
            m.run()

    def test_run_until_pauses(self):
        m = make_machine(1)

        def body(ctx):
            for _ in range(100):
                yield Work(10)

        m.add_thread(body)
        m.run(until=200)
        assert m.now == 200
        m.run()
        assert m.now >= 1000


class TestSnapshotDelta:
    def test_counter_window(self):
        m = make_machine(1)
        addr = m.alloc_var(0)

        def body(ctx):
            for _ in range(10):
                yield Store(addr, 1)

        m.add_thread(body)
        before = m.counters.snapshot()
        m.run()
        delta = m.counters.delta(before)
        assert delta["l1_hits"] == 9
        assert delta["l1_misses"] == 1
