"""API surface: Machine memory helpers, Ctx helpers, package exports,
harness run_all."""

import pytest

from conftest import make_machine

import repro
from repro import Load, Store, WORD_SIZE, Work
from repro.harness.runner import run_all


class TestMachineHelpers:
    def test_alloc_var_is_line_private(self, machine):
        a = machine.alloc_var(1)
        b = machine.alloc_var(2)
        assert machine.amap.line_of(a) != machine.amap.line_of(b)
        assert machine.peek(a) == 1
        assert machine.peek(b) == 2

    def test_alloc_struct(self, machine):
        base = machine.alloc_struct([10, 20, 30])
        assert machine.peek(base) == 10
        assert machine.peek(base + WORD_SIZE) == 20
        assert machine.peek(base + 2 * WORD_SIZE) == 30

    def test_write_init_and_peek(self, machine):
        addr = machine.alloc.alloc_words(1)
        machine.write_init(addr, "x")
        assert machine.peek(addr) == "x"

    def test_now_property(self, machine):
        def body(ctx):
            yield Work(42)

        machine.add_thread(body)
        machine.run()
        assert machine.now == 42


class TestCtxHelpers:
    def test_alloc_words_with_init(self, machine):
        vals = {}

        def body(ctx):
            base = ctx.alloc_words(3, [7, 8, 9])
            vals["v"] = [ctx.peek(base + i * WORD_SIZE) for i in range(3)]
            yield Work(1)

        machine.add_thread(body)
        machine.run()
        assert vals["v"] == [7, 8, 9]

    def test_alloc_cached_spanning_lines(self, machine):
        """A multi-line allocation is fully installed in the core's L1."""
        from repro.coherence.states import LineState
        lines = {}

        def body(ctx):
            words = machine.amap.words_per_line() + 1   # spans two lines
            base = ctx.alloc_cached(words, list(range(words)))
            l1 = machine.cores[ctx.core_id].memunit.l1
            first = machine.amap.line_of(base)
            last = machine.amap.line_of(base + (words - 1) * WORD_SIZE)
            lines["states"] = [l1.state_of(ln)
                               for ln in range(first, last + 1)]
            yield Work(1)

        machine.add_thread(body)
        machine.run()
        assert all(s == LineState.M for s in lines["states"])
        assert len(lines["states"]) == 2

    def test_per_thread_rng_deterministic_and_distinct(self, machine):
        seqs = {}

        def body(ctx, tag):
            seqs[tag] = [ctx.rng.random() for _ in range(3)]
            yield Work(1)

        machine.add_thread(body, "a")
        machine.add_thread(body, "b")
        machine.run()
        assert seqs["a"] != seqs["b"]


class TestPackageExports:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__


class TestRunAll:
    def test_run_all_subset(self, capsys):
        out = run_all(thread_counts=(2,), names=["fig2_stack"],
                      verbose=True)
        assert "fig2_stack" in out
        printed = capsys.readouterr().out
        assert "Figure 2" in printed

    def test_run_all_quiet(self, capsys):
        run_all(thread_counts=(2,), names=["fig2_stack"], verbose=False)
        assert capsys.readouterr().out == ""
