"""Repository quality gates: public API documentation, workload-body
error propagation, determinism across protocols."""

import inspect

import pytest

from conftest import make_machine

from repro import Load, Machine, MachineConfig, Work


def _public_members(module):
    for name in getattr(module, "__all__", []):
        yield name, getattr(module, name)


def test_every_public_class_and_function_documented():
    import repro
    import repro.coherence
    import repro.lease
    import repro.mem
    import repro.stats
    import repro.structures
    import repro.stm
    import repro.sync
    import repro.apps
    import repro.workloads

    undocumented = []
    for module in (repro, repro.coherence, repro.lease, repro.mem,
                   repro.stats, repro.structures, repro.stm, repro.sync,
                   repro.apps, repro.workloads):
        for name, obj in _public_members(module):
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, f"missing docstrings: {undocumented}"


def test_every_module_has_a_docstring():
    import pathlib
    import repro

    root = pathlib.Path(repro.__file__).parent
    bare = []
    for path in root.rglob("*.py"):
        text = path.read_text()
        stripped = text.lstrip()
        if not (stripped.startswith('"""') or stripped.startswith("'''")):
            bare.append(str(path.relative_to(root)))
    assert not bare, f"modules without docstrings: {bare}"


def test_workload_exception_propagates_with_context():
    """A bug in workload code fails the run loudly (no silent hang)."""
    m = make_machine(1)

    def buggy(ctx):
        yield Work(5)
        raise KeyError("workload bug")

    m.add_thread(buggy)
    with pytest.raises(KeyError):
        m.run()


def test_determinism_holds_under_mesi():
    def run():
        m = Machine(MachineConfig(num_cores=4, protocol="mesi", seed=11))
        addr = m.alloc_var(0)

        def body(ctx):
            for _ in range(10):
                v = yield Load(addr)
                from repro import CAS
                yield CAS(addr, v, v + 1)
                yield Work(ctx.rng.randrange(1, 30))

        for _ in range(4):
            m.add_thread(body)
        m.run()
        return m.sim.now, m.counters.messages, m.peek(addr)

    assert run() == run()


def test_run_result_row_includes_extras():
    from repro.workloads import bench_tl2
    r = bench_tl2(2, txns_per_thread=4)
    row = r.row()
    assert "abort_rate" in row
    assert row["threads"] == 2
