"""MachineConfig encodes Table 1 of the paper; validation rejects nonsense."""

import dataclasses

import pytest

from repro import ConfigError, EnergyConfig, LeaseConfig, MachineConfig, \
    NetworkConfig


class TestTable1Defaults:
    """The defaults must match the paper's system configuration table."""

    def test_core_clock_is_1ghz(self):
        assert MachineConfig().clock_hz == 1_000_000_000

    def test_l1_is_32kb_4way_1cycle(self):
        cfg = MachineConfig()
        assert cfg.l1_size_bytes == 32 * 1024
        assert cfg.l1_assoc == 4
        assert cfg.l1_latency == 1

    def test_l2_is_256kb_8way_tag3_data8(self):
        cfg = MachineConfig()
        assert cfg.l2_size_bytes_per_tile == 256 * 1024
        assert cfg.l2_assoc == 8
        assert cfg.l2_tag_latency == 3
        assert cfg.l2_data_latency == 8

    def test_line_size_64_bytes(self):
        assert MachineConfig().line_size == 64

    def test_max_lease_time_20k_cycles(self):
        # 20K cycles == 20 microseconds at 1 GHz (Section 7).
        assert LeaseConfig().max_lease_time == 20_000

    def test_l1_num_sets(self):
        # 32 KB / (64 B x 4 ways) = 128 sets.
        assert MachineConfig().l1_num_sets == 128


class TestValidation:
    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(num_cores=0)

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(line_size=48)

    def test_tiny_line_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(line_size=4)

    def test_negative_lease_time_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(lease=LeaseConfig(max_lease_time=-1))

    def test_zero_max_leases_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(lease=LeaseConfig(max_num_leases=0))

    def test_bad_multilease_mode_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(lease=LeaseConfig(multilease_mode="quantum"))

    def test_negative_network_latency_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(network=NetworkConfig(hop_latency=-1))

    def test_negative_energy_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(energy=EnergyConfig(message_nj=-0.1))

    def test_l1_geometry_must_divide(self):
        with pytest.raises(ConfigError):
            MachineConfig(l1_size_bytes=1000)


class TestDerived:
    def test_mesh_dim_squares(self):
        assert MachineConfig(num_cores=1).mesh_dim == 1
        assert MachineConfig(num_cores=4).mesh_dim == 2
        assert MachineConfig(num_cores=9).mesh_dim == 3
        assert MachineConfig(num_cores=16).mesh_dim == 4
        assert MachineConfig(num_cores=64).mesh_dim == 8

    def test_mesh_dim_non_squares_round_up(self):
        assert MachineConfig(num_cores=5).mesh_dim == 3
        assert MachineConfig(num_cores=33).mesh_dim == 6

    def test_with_leases_toggles_only_lease_flag(self):
        cfg = MachineConfig(num_cores=8)
        off = cfg.with_leases(False)
        assert not off.lease.enabled
        assert off.num_cores == 8
        assert off.lease.max_lease_time == cfg.lease.max_lease_time

    def test_with_cores(self):
        assert MachineConfig().with_cores(32).num_cores == 32

    def test_config_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            MachineConfig().num_cores = 2
