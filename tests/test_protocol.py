"""End-to-end MSI protocol behaviour through small machines.

These tests drive real threads and then assert on directory state, L1
states and traffic counters -- the protocol's observable contract.
"""

from conftest import make_machine

from repro import CAS, FetchAdd, Load, Store, Work
from repro.coherence.states import DirState, LineState


def run_threads(m, *bodies):
    for body in bodies:
        m.add_thread(body)
    m.run()
    m.check_coherence_invariants()


class TestReadsAndWrites:
    def test_single_reader_gets_shared(self):
        m = make_machine(2)
        addr = m.alloc_var(7)

        def reader(ctx):
            v = yield Load(addr)
            assert v == 7

        run_threads(m, reader)
        line = m.amap.line_of(addr)
        assert m.directory.state_of(line) == DirState.SHARED
        assert m.cores[0].memunit.l1.state_of(line) == LineState.S

    def test_writer_gets_modified(self):
        m = make_machine(2)
        addr = m.alloc_var(0)

        def writer(ctx):
            yield Store(addr, 42)

        run_threads(m, writer)
        line = m.amap.line_of(addr)
        assert m.directory.state_of(line) == DirState.MODIFIED
        assert m.directory.owner_of(line) == 0
        assert m.peek(addr) == 42

    def test_two_readers_share(self):
        m = make_machine(2)
        addr = m.alloc_var(5)

        def reader(ctx):
            v = yield Load(addr)
            assert v == 5

        run_threads(m, reader, reader)
        line = m.amap.line_of(addr)
        assert m.directory.state_of(line) == DirState.SHARED
        assert m.directory.sharers_of(line) == frozenset({0, 1})

    def test_write_invalidates_readers(self):
        m = make_machine(3)
        addr = m.alloc_var(0)

        def reader(ctx):
            yield Load(addr)
            yield Work(5)

        def writer(ctx):
            yield Work(200)       # let both readers cache the line first
            yield Store(addr, 1)

        run_threads(m, reader, reader, writer)
        line = m.amap.line_of(addr)
        assert m.directory.state_of(line) == DirState.MODIFIED
        assert m.directory.owner_of(line) == 2
        assert m.cores[0].memunit.l1.state_of(line) == LineState.I
        assert m.cores[1].memunit.l1.state_of(line) == LineState.I
        assert m.counters.invalidations_sent >= 2

    def test_read_downgrades_writer(self):
        m = make_machine(2)
        addr = m.alloc_var(0)

        def writer(ctx):
            yield Store(addr, 9)

        def reader(ctx):
            yield Work(200)
            v = yield Load(addr)
            assert v == 9

        run_threads(m, writer, reader)
        line = m.amap.line_of(addr)
        assert m.directory.state_of(line) == DirState.SHARED
        assert m.cores[0].memunit.l1.state_of(line) == LineState.S
        assert m.counters.downgrades_sent == 1
        assert m.counters.writebacks >= 1

    def test_repeat_reads_hit_in_l1(self):
        m = make_machine(1)
        addr = m.alloc_var(3)

        def reader(ctx):
            for _ in range(10):
                yield Load(addr)

        run_threads(m, reader)
        assert m.counters.l1_misses == 1
        assert m.counters.l1_hits == 9

    def test_upgrade_from_shared(self):
        """A core holding S that writes issues a GetX but no data fetch."""
        m = make_machine(2)
        addr = m.alloc_var(0)

        def rw(ctx):
            yield Load(addr)
            yield Store(addr, 1)

        run_threads(m, rw)
        line = m.amap.line_of(addr)
        assert m.directory.state_of(line) == DirState.MODIFIED
        # One GetS + one GetX, both misses.
        assert m.counters.gets_requests == 1
        assert m.counters.getx_requests == 1


class TestAtomics:
    def test_fetch_add_no_lost_updates(self):
        m = make_machine(4, leases=False)
        addr = m.alloc_var(0)

        def worker(ctx):
            for _ in range(25):
                yield FetchAdd(addr, 1)

        run_threads(m, *([worker] * 4))
        assert m.peek(addr) == 100

    def test_cas_is_atomic(self):
        m = make_machine(4, leases=False)
        addr = m.alloc_var(0)

        def worker(ctx):
            done = 0
            while done < 25:
                v = yield Load(addr)
                ok = yield CAS(addr, v, v + 1)
                if ok:
                    done += 1

        run_threads(m, *([worker] * 4))
        assert m.peek(addr) == 100

    def test_cas_failure_counted(self):
        m = make_machine(1)
        addr = m.alloc_var(5)

        def worker(ctx):
            ok = yield CAS(addr, 99, 1)
            assert not ok

        run_threads(m, worker)
        assert m.counters.cas_failures == 1
        assert m.peek(addr) == 5


class TestEvictions:
    def test_capacity_eviction_notifies_directory(self):
        """Filling one L1 set beyond its ways produces PutS/PutM notices
        and leaves the directory consistent."""
        m = make_machine(1)
        cfg = m.config
        # Addresses mapping to the same L1 set: stride = sets * line.
        stride = cfg.l1_num_sets * cfg.line_size
        addrs = [m.alloc.alloc(8, align=stride) for _ in range(cfg.l1_assoc + 2)]

        def worker(ctx):
            for a in addrs:
                yield Store(a, 1)

        run_threads(m, worker)
        assert m.counters.l1_evictions == 2

    def test_dirty_eviction_then_reread(self):
        """A value written, evicted and re-read must survive."""
        m = make_machine(1)
        cfg = m.config
        stride = cfg.l1_num_sets * cfg.line_size
        addrs = [m.alloc.alloc(8, align=stride)
                 for _ in range(cfg.l1_assoc + 1)]

        def worker(ctx):
            for i, a in enumerate(addrs):
                yield Store(a, i + 100)
            vals = []
            for a in addrs:
                v = yield Load(a)
                vals.append(v)
            assert vals == [i + 100 for i in range(len(addrs))]

        run_threads(m, worker)


class TestTrafficAccounting:
    def test_miss_generates_messages(self):
        m = make_machine(2)
        addr = m.alloc_var(0)

        def reader(ctx):
            yield Load(addr)

        run_threads(m, reader)
        assert m.counters.messages >= 2      # request + grant
        assert m.counters.l2_accesses >= 1
        assert m.counters.dram_accesses == 1  # cold miss

    def test_warm_alloc_skips_dram(self):
        m = make_machine(2)

        def worker(ctx):
            a = ctx.alloc_cached(1, [5])
            v = yield Load(a)
            assert v == 5

        run_threads(m, worker)
        assert m.counters.dram_accesses == 0
        assert m.counters.l1_misses == 0

    def test_dram_charged_once_per_line(self):
        m = make_machine(2)
        addr = m.alloc_var(0)

        def t0(ctx):
            yield Load(addr)

        def t1(ctx):
            yield Work(100)
            yield Load(addr)

        run_threads(m, t0, t1)
        assert m.counters.dram_accesses == 1
