"""Priority queues: sequential skiplist PQ, Pugh fine-grained, global-lock
+ lease; plus the MultiQueue relaxed PQ."""

import pytest
from hypothesis import given, settings, strategies as st

from conftest import make_machine

from repro.structures import (GlobalLockPQ, MultiQueue, PughLockPQ,
                              SequentialSkipListPQ)
from repro.structures.multiqueue import SequentialBinaryHeap


class TestSequentialSkipListPQ:
    def test_delete_min_order(self, machine1):
        pq = SequentialSkipListPQ(machine1)
        out = []

        def body(ctx):
            for k in (5, 1, 9, 3):
                yield from pq.insert(ctx, k)
            for _ in range(5):
                out.append((yield from pq.delete_min(ctx)))

        machine1.add_thread(body)
        machine1.run()
        assert out == [1, 3, 5, 9, None]

    def test_prefill_sorted(self, machine1):
        pq = SequentialSkipListPQ(machine1)
        pq.prefill([7, 2, 9])
        assert pq.keys_direct() == [2, 7, 9]

    @given(st.lists(st.integers(0, 100), max_size=25))
    @settings(max_examples=15, deadline=None)
    def test_property_heapsort(self, keys):
        m = make_machine(1)
        pq = SequentialSkipListPQ(m)
        out = []

        def body(ctx):
            for k in keys:
                yield from pq.insert(ctx, k)
            for _ in range(len(keys)):
                out.append((yield from pq.delete_min(ctx)))

        m.add_thread(body)
        m.run()
        assert out == sorted(keys)


class TestSequentialBinaryHeap:
    @given(st.lists(st.integers(0, 100), max_size=25))
    @settings(max_examples=15, deadline=None)
    def test_property_heapsort(self, keys):
        m = make_machine(1)
        h = SequentialBinaryHeap(m, capacity=64)
        out = []

        def body(ctx):
            for k in keys:
                yield from h.insert(ctx, k)
            for _ in range(len(keys)):
                out.append((yield from h.delete_min(ctx)))

        m.add_thread(body)
        m.run()
        assert out == sorted(keys)

    def test_peek_does_not_remove(self, machine1):
        h = SequentialBinaryHeap(machine1)
        out = []

        def body(ctx):
            yield from h.insert(ctx, 4)
            out.append((yield from h.peek_min(ctx)))
            out.append((yield from h.peek_min(ctx)))

        machine1.add_thread(body)
        machine1.run()
        assert out == [4, 4]

    def test_empty(self, machine1):
        h = SequentialBinaryHeap(machine1)
        out = []

        def body(ctx):
            out.append((yield from h.peek_min(ctx)))
            out.append((yield from h.delete_min(ctx)))

        machine1.add_thread(body)
        machine1.run()
        assert out == [None, None]

    def test_capacity_overflow(self, machine1):
        h = SequentialBinaryHeap(machine1, capacity=2)
        errs = []

        def body(ctx):
            yield from h.insert(ctx, 1)
            yield from h.insert(ctx, 2)
            try:
                yield from h.insert(ctx, 3)
            except OverflowError as e:
                errs.append(e)

        machine1.add_thread(body)
        machine1.run()
        assert len(errs) == 1


@pytest.mark.parametrize("cls,leases", [
    (PughLockPQ, False),
    (GlobalLockPQ, False),
    (GlobalLockPQ, True),
])
class TestConcurrentPQ:
    def test_conservation_and_order(self, cls, leases):
        m = make_machine(4, leases=leases)
        pq = cls(m)
        pq.prefill(range(0, 60, 2))
        popped = []

        def worker(ctx, tid):
            for i in range(6):
                yield from pq.insert(ctx, 100 + tid * 10 + i)
            for _ in range(6):
                v = yield from pq.delete_min(ctx)
                if v is not None:
                    popped.append(v)

        for tid in range(4):
            m.add_thread(worker, tid)
        m.run()
        m.check_coherence_invariants()
        remaining = pq.keys_direct()
        assert remaining == sorted(remaining)
        assert len(popped) + len(remaining) == 30 + 24
        assert sorted(popped + remaining) == sorted(
            list(range(0, 60, 2)) +
            [100 + t * 10 + i for t in range(4) for i in range(6)])

    def test_delete_min_returns_small_keys(self, cls, leases):
        """Every deleted key must be <= every key still in the queue at
        the end (global minimality cannot hold mid-run, but the smallest
        prefilled keys must be gone first in aggregate)."""
        m = make_machine(4, leases=leases)
        pq = cls(m)
        pq.prefill(range(100))
        popped = []

        def worker(ctx):
            for _ in range(5):
                v = yield from pq.delete_min(ctx)
                popped.append(v)

        for _ in range(4):
            m.add_thread(worker)
        m.run()
        assert sorted(popped) == list(range(20))


class TestMultiQueue:
    @pytest.mark.parametrize("leases", [False, True])
    def test_conservation(self, leases):
        m = make_machine(4, leases=leases)
        mq = MultiQueue(m, num_queues=4)
        mq.prefill(range(40))
        popped = []

        def worker(ctx, tid):
            for i in range(8):
                yield from mq.insert(ctx, 1000 + tid * 10 + i)
            for _ in range(8):
                v = yield from mq.delete_min(ctx)
                if v is not None:
                    popped.append(v)

        for tid in range(4):
            m.add_thread(worker, tid)
        m.run()
        m.check_coherence_invariants()
        remaining = [k for q in mq.queues for k in q.keys_direct()]
        assert sorted(popped + remaining) == sorted(
            list(range(40)) +
            [1000 + t * 10 + i for t in range(4) for i in range(8)])

    @pytest.mark.parametrize("leases", [False, True])
    def test_relaxed_delete_min_quality(self, leases):
        """deleteMin returns *small* keys: with 4 queues the rank error is
        bounded in practice; we assert the aggregate stays in the bottom
        half (a loose relaxation bound)."""
        m = make_machine(4, leases=leases)
        mq = MultiQueue(m, num_queues=4)
        mq.prefill(range(200))
        popped = []

        def worker(ctx):
            for _ in range(10):
                v = yield from mq.delete_min(ctx)
                if v is not None:
                    popped.append(v)

        for _ in range(4):
            m.add_thread(worker)
        m.run()
        assert len(popped) == 40
        assert max(popped) < 100     # all from the lower half
