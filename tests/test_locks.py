"""Lock implementations: mutual exclusion, fairness, try-lock semantics,
and the Section 6 leased-lock pattern."""

import pytest

from conftest import make_machine

from repro import Load, Store, Work
from repro.sync import CLHLock, TASLock, TTSLock, TicketLock
from repro.sync.locks import lease_lock_acquire, lease_lock_release

LOCKS = [TASLock, TTSLock, TicketLock, CLHLock]


def exercise_mutex(m, lock, num_threads=4, ops=15, *, leased=False):
    """Shared critical-section harness: counts overlap violations."""
    shared = m.alloc_var(0)
    in_cs = {"n": 0, "max": 0}

    def worker(ctx):
        for _ in range(ops):
            if leased:
                token = yield from lease_lock_acquire(ctx, lock)
            else:
                token = yield from lock.acquire(ctx)
            in_cs["n"] += 1
            in_cs["max"] = max(in_cs["max"], in_cs["n"])
            v = yield Load(shared)
            yield Work(20)
            yield Store(shared, v + 1)
            in_cs["n"] -= 1
            if leased:
                yield from lease_lock_release(ctx, lock, token)
            else:
                yield from lock.release(ctx, token)

    for _ in range(num_threads):
        m.add_thread(worker)
    m.run()
    m.check_coherence_invariants()
    return shared, in_cs


@pytest.mark.parametrize("lock_cls", LOCKS)
def test_mutual_exclusion(lock_cls):
    m = make_machine(4, leases=False)
    lock = lock_cls(m)
    shared, in_cs = exercise_mutex(m, lock)
    assert in_cs["max"] == 1
    assert m.peek(shared) == 60


@pytest.mark.parametrize("lock_cls", [TASLock, TTSLock])
def test_mutual_exclusion_with_leases(lock_cls):
    m = make_machine(4, leases=True)
    lock = lock_cls(m)
    shared, in_cs = exercise_mutex(m, lock, leased=True)
    assert in_cs["max"] == 1
    assert m.peek(shared) == 60


@pytest.mark.parametrize("lock_cls", [TASLock, TTSLock])
def test_try_acquire_fails_when_held(lock_cls):
    m = make_machine(2, leases=False)
    lock = lock_cls(m)
    out = {}

    def holder(ctx):
        ok = yield from lock.try_acquire(ctx)
        assert ok
        yield Work(500)
        yield from lock.release(ctx)

    def prober(ctx):
        yield Work(100)
        out["second"] = yield from lock.try_acquire(ctx)
        yield Work(600)
        out["third"] = yield from lock.try_acquire(ctx)

    m.add_thread(holder)
    m.add_thread(prober)
    m.run()
    assert out["second"] is False
    assert out["third"] is True
    assert m.counters.lock_acquire_failures == 1


def test_ticket_lock_is_fifo():
    m = make_machine(4, leases=False)
    lock = TicketLock(m)
    order = []

    def worker(ctx, tag):
        yield Work(tag * 50)           # staggered arrival
        token = yield from lock.acquire(ctx)
        order.append(tag)
        yield Work(300)
        yield from lock.release(ctx, token)

    for tag in range(4):
        m.add_thread(worker, tag)
    m.run()
    assert order == [0, 1, 2, 3]


def test_clh_lock_is_fifo():
    m = make_machine(4, leases=False)
    lock = CLHLock(m)
    order = []

    def worker(ctx, tag):
        yield Work(tag * 80)
        token = yield from lock.acquire(ctx)
        order.append(tag)
        yield Work(400)
        yield from lock.release(ctx, token)

    for tag in range(4):
        m.add_thread(worker, tag)
    m.run()
    assert order == [0, 1, 2, 3]


def test_leased_lock_failure_drops_lease_immediately():
    """Section 6: a thread that fails try_lock must not keep the lease
    (holding it would delay the owner)."""
    m = make_machine(2, leases=True, prioritize_regular_requests=False)
    lock = TTSLock(m)
    times = {}

    def holder(ctx):
        token = yield from lease_lock_acquire(ctx, lock)
        yield Work(800)
        yield from lease_lock_release(ctx, lock, token)
        times["unlocked"] = ctx.machine.now

    def waiter(ctx):
        yield Work(100)
        token = yield from lease_lock_acquire(ctx, lock)
        times["acquired"] = ctx.machine.now
        yield from lease_lock_release(ctx, lock, token)

    m.add_thread(holder)
    m.add_thread(waiter)
    m.run()
    # The waiter gets the lock promptly after the unlock, not after a
    # 20K-cycle lease expiry.
    assert times["acquired"] - times["unlocked"] < 200


def test_lease_lock_invariant_lock_free_on_grant():
    """Section 6 invariant: when a thread is granted the leased lock line,
    the lock is already free -- so try_lock failures are rare (zero here)."""
    m = make_machine(8, leases=True)
    lock = TTSLock(m)

    def worker(ctx):
        for _ in range(10):
            token = yield from lease_lock_acquire(ctx, lock)
            yield Work(50)
            yield from lease_lock_release(ctx, lock, token)

    for _ in range(8):
        m.add_thread(worker)
    m.run()
    assert m.counters.lock_acquire_failures == 0


def test_lock_without_lease_has_failures_under_contention():
    """Contrast case for the invariant above: the plain TTS lock sees
    acquisition failures under the same load."""
    m = make_machine(8, leases=False)
    lock = TTSLock(m)

    def worker(ctx):
        for _ in range(10):
            token = yield from lock.acquire(ctx)
            yield Work(50)
            yield from lock.release(ctx, token)

    for _ in range(8):
        m.add_thread(worker)
    m.run()
    assert m.counters.lock_acquire_failures > 0
