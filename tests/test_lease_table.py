"""LeaseTable: bounded FIFO key-value semantics (Section 3)."""

from hypothesis import given, strategies as st

from repro.lease import LeaseEntry, LeaseGroup, LeaseTable


def test_add_and_get():
    t = LeaseTable(4)
    e = LeaseEntry(7, 100)
    t.add(e)
    assert t.get(7) is e
    assert 7 in t
    assert len(t) == 1


def test_get_missing_is_none():
    assert LeaseTable(4).get(1) is None


def test_oldest_is_fifo():
    t = LeaseTable(4)
    for line in (3, 1, 2):
        t.add(LeaseEntry(line, 10))
    assert t.oldest().line == 3
    t.remove(3)
    assert t.oldest().line == 1


def test_oldest_empty_is_none():
    assert LeaseTable(4).oldest() is None


def test_full_flag():
    t = LeaseTable(2)
    t.add(LeaseEntry(1, 10))
    assert not t.full
    t.add(LeaseEntry(2, 10))
    assert t.full


def test_remove_returns_entry():
    t = LeaseTable(2)
    e = LeaseEntry(1, 10)
    t.add(e)
    assert t.remove(1) is e
    assert t.remove(1) is None


def test_entries_snapshot_in_fifo_order():
    t = LeaseTable(8)
    for line in (5, 3, 9):
        t.add(LeaseEntry(line, 10))
    assert [e.line for e in t.entries()] == [5, 3, 9]


def test_entry_holds_line_lifecycle():
    e = LeaseEntry(1, 10)
    assert not e.holds_line          # not yet granted
    e.granted = True
    assert e.holds_line
    e.dead = True
    assert not e.holds_line


def test_group_membership():
    g = LeaseGroup((1, 2, 3))
    e = LeaseEntry(2, 10, g)
    assert e.group is g
    assert not g.dead


@given(st.lists(st.integers(0, 30), unique=True, max_size=20),
       st.integers(1, 8))
def test_property_fifo_eviction_order(lines, cap):
    """Inserting beyond capacity (evicting oldest first, as the manager
    does) always leaves the most recent `cap` lines."""
    t = LeaseTable(cap)
    for line in lines:
        if t.full:
            t.remove(t.oldest().line)
        t.add(LeaseEntry(line, 10))
    expected = lines[-cap:] if len(lines) > cap else lines
    assert [e.line for e in t.entries()] == expected
