"""EventQueue: ordering, cancellation, determinism."""

import pytest
from hypothesis import given, strategies as st

from repro.engine import EventQueue
from repro.errors import SimulationError


def test_pops_in_time_order():
    q = EventQueue()
    fired = []
    for t in (5, 1, 3, 2, 4):
        q.schedule(t, fired.append, t)
    while (ev := q.pop()) is not None:
        ev.fn(*ev.args)
    assert fired == [1, 2, 3, 4, 5]


def test_fifo_within_same_time():
    q = EventQueue()
    order = []
    for i in range(10):
        q.schedule(7, order.append, i)
    while (ev := q.pop()) is not None:
        ev.fn(*ev.args)
    assert order == list(range(10))


def test_cancel_skips_event():
    q = EventQueue()
    fired = []
    ev = q.schedule(1, fired.append, "a")
    q.schedule(2, fired.append, "b")
    q.cancel(ev)
    while (e := q.pop()) is not None:
        e.fn(*e.args)
    assert fired == ["b"]


def test_cancel_twice_is_noop():
    q = EventQueue()
    ev = q.schedule(1, lambda: None)
    q.cancel(ev)
    q.cancel(ev)
    assert len(q) == 0


def test_len_counts_live_events():
    q = EventQueue()
    evs = [q.schedule(i, lambda: None) for i in range(5)]
    assert len(q) == 5
    q.cancel(evs[2])
    assert len(q) == 4
    q.pop()
    assert len(q) == 3


def test_peek_time_skips_cancelled():
    q = EventQueue()
    ev1 = q.schedule(1, lambda: None)
    q.schedule(9, lambda: None)
    q.cancel(ev1)
    assert q.peek_time() == 9


def test_peek_time_empty():
    assert EventQueue().peek_time() is None


def test_pop_empty_returns_none():
    assert EventQueue().pop() is None


def test_negative_time_rejected():
    with pytest.raises(SimulationError):
        EventQueue().schedule(-1, lambda: None)


@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=200))
def test_property_pop_order_is_stable_sort(times):
    """Events come out sorted by time, ties broken by insertion order."""
    q = EventQueue()
    for i, t in enumerate(times):
        q.schedule(t, lambda: None)
    out = []
    while (ev := q.pop()) is not None:
        out.append((ev.time, ev.seq))
    expected = sorted((t, i) for i, t in enumerate(times))
    assert out == expected


@given(st.lists(st.tuples(st.integers(0, 100), st.booleans()), max_size=100))
def test_property_cancellation_filters(entries):
    """Cancelled events never fire; the rest fire in stable order."""
    q = EventQueue()
    evs = []
    for t, keep in entries:
        evs.append((q.schedule(t, lambda: None), keep))
    for ev, keep in evs:
        if not keep:
            q.cancel(ev)
    out = []
    while (e := q.pop()) is not None:
        out.append((e.time, e.seq))
    expected = sorted((ev.time, ev.seq) for ev, keep in evs if keep)
    assert out == expected


@given(st.lists(st.one_of(
    st.tuples(st.just("schedule"), st.integers(0, 50)),
    st.tuples(st.just("cancel"), st.integers(0, 200)),
    st.tuples(st.just("pop"), st.just(0)),
    st.tuples(st.just("peek"), st.just(0)),
), max_size=300))
def test_property_interleaved_ops_stay_consistent(ops):
    """Under any interleaving of schedule/cancel/pop/peek the queue agrees
    with a naive model: len() counts live events, heap_size never lies
    below it, pops come out in (time, seq) order, and peek_time always
    names the next live event's time."""
    q = EventQueue()
    live: dict[int, int] = {}         # seq -> time
    pending = []                      # scheduled, not yet popped
    for op, arg in ops:
        if op == "schedule":
            ev = q.schedule(arg, lambda: None)
            pending.append(ev)
            live[ev.seq] = arg
        elif op == "cancel" and pending:
            ev = pending[arg % len(pending)]
            q.cancel(ev)              # double cancels must be no-ops...
            live.pop(ev.seq, None)    # ...so the model only forgets once
        elif op == "pop":
            ev = q.pop()
            if ev is None:
                assert not live
            else:
                # The pop must be the (time, seq)-minimal live event.
                assert (ev.time, ev.seq) == min(
                    (t, s) for s, t in live.items())
                del live[ev.seq]
                pending.remove(ev)
        elif op == "peek":
            t = q.peek_time()
            assert t == (min(live.values()) if live else None)
        assert len(q) == len(live)
        assert q.heap_size >= len(q)
    # Drain: whatever is still live comes out in (time, seq) order.
    drained = []
    while (ev := q.pop()) is not None:
        assert live.pop(ev.seq) == ev.time
        drained.append((ev.time, ev.seq))
    assert not live
    assert drained == sorted(drained)


# -- lazy-cancel compaction -------------------------------------------------

def test_compaction_keeps_heap_bounded():
    """Schedule/cancel churn must not grow the physical heap without bound:
    once dead entries dominate, the queue compacts in place."""
    q = EventQueue()
    keep = q.schedule(10**6, lambda: None)
    for i in range(10_000):
        ev = q.schedule(i + 1, lambda: None)
        q.cancel(ev)
        assert q.heap_size <= max(2 * len(q), EventQueue.COMPACT_MIN_DEAD + 2)
    assert len(q) == 1
    assert q.heap_size < 100
    assert q.pop() is keep


def test_compaction_preserves_pop_order():
    q = EventQueue()
    events = [q.schedule(t, lambda: None) for t in range(500)]
    for ev in events[::2]:
        q.cancel(ev)                 # forces several compactions
    out = []
    while (e := q.pop()) is not None:
        out.append((e.time, e.seq))
    assert out == sorted((e.time, e.seq) for e in events[1::2])


def test_cancel_twice_after_compaction_is_noop():
    q = EventQueue()
    evs = [q.schedule(t, lambda: None) for t in range(200)]
    for ev in evs[:150]:
        q.cancel(ev)
    for ev in evs[:150]:
        q.cancel(ev)                 # double-cancel must not corrupt _live
    assert len(q) == 50
