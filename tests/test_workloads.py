"""Workload drivers: every bench runs, is deterministic, and reports sane
results; the harness registry covers every figure in DESIGN.md."""

import pytest

from repro.harness import EXPERIMENTS, run_experiment
from repro.harness.runner import series_table, sweep
from repro.workloads import (bench_bst, bench_counter, bench_harris_list,
                             bench_hashtable, bench_multiqueue,
                             bench_pagerank, bench_pq, bench_queue,
                             bench_skiplist, bench_snapshot, bench_stack,
                             bench_tl2)

SMALL = dict(ops_per_thread=10)


class TestDrivers:
    @pytest.mark.parametrize("variant", ["base", "lease", "backoff"])
    def test_stack_variants(self, variant):
        r = bench_stack(2, variant=variant, **SMALL)
        assert r.ops == 20
        assert r.throughput_ops_per_sec > 0

    @pytest.mark.parametrize("variant",
                             ["base", "lease", "multilease", "backoff"])
    def test_queue_variants(self, variant):
        r = bench_queue(2, variant=variant, **SMALL)
        assert r.ops == 20

    @pytest.mark.parametrize("variant,lease", [
        ("tts", False), ("tts", True), ("ticket", False), ("clh", False),
    ])
    def test_counter_variants(self, variant, lease):
        r = bench_counter(2, variant=variant, use_lease=lease, **SMALL)
        assert r.ops == 20

    @pytest.mark.parametrize("variant", ["pugh", "globallock", "lease"])
    def test_pq_variants(self, variant):
        r = bench_pq(2, variant=variant, ops_per_thread=8, prefill=64)
        assert r.ops == 16

    @pytest.mark.parametrize("lease", [False, True])
    def test_multiqueue(self, lease):
        r = bench_multiqueue(2, use_lease=lease, ops_per_thread=8,
                             prefill=64)
        assert r.ops == 16

    @pytest.mark.parametrize("variant", ["none", "single", "multi"])
    def test_tl2_variants(self, variant):
        r = bench_tl2(2, variant=variant, txns_per_thread=8)
        assert r.ops == 16
        assert "abort_rate" in r.extra

    @pytest.mark.parametrize("mode", ["hardware", "software"])
    def test_tl2_multilease_modes(self, mode):
        r = bench_tl2(2, variant="multi", multilease_mode=mode,
                      txns_per_thread=8)
        assert r.ops == 16

    @pytest.mark.parametrize("lease", [False, True])
    def test_pagerank(self, lease):
        r = bench_pagerank(2, num_pages=32, iterations=1, use_lease=lease)
        assert r.ops == 32          # one op per page per iteration

    @pytest.mark.parametrize("lease", [False, True])
    def test_snapshot(self, lease):
        r = bench_snapshot(2, use_lease=lease, ops_per_thread=5)
        assert r.ops == 5
        assert "snapshot_retries" in r.extra

    @pytest.mark.parametrize("bench", [bench_harris_list, bench_skiplist,
                                       bench_hashtable, bench_bst])
    def test_low_contention_structures(self, bench):
        r = bench(2, ops_per_thread=10, key_range=32)
        assert r.ops == 20

    def test_driver_determinism(self):
        a = bench_stack(2, variant="lease", **SMALL)
        b = bench_stack(2, variant="lease", **SMALL)
        assert a.cycles == b.cycles
        assert a.messages_per_op == b.messages_per_op

    def test_max_lease_time_override(self):
        r = bench_stack(2, variant="lease", max_lease_time=1_000, **SMALL)
        assert r.ops == 20


class TestHarness:
    def test_every_design_md_experiment_registered(self):
        expected = {
            "fig2_stack", "fig3_counter", "fig3_queue", "fig3_pq",
            "fig4_multiqueue", "fig4_tl2", "fig5_hw_sw_multilease",
            "fig5_pagerank", "e1_backoff", "e2_low_contention_list",
            "e2_low_contention_skiplist", "e2_low_contention_hashtable",
            "e2_low_contention_bst", "e3_messages_per_op",
            "a1_prioritization", "a2_lease_time", "a3_misuse",
            "s1_snapshot",
        }
        assert expected <= set(EXPERIMENTS)

    def test_experiments_have_claims(self):
        for exp in EXPERIMENTS.values():
            assert exp.paper_claim
            assert exp.variants

    def test_run_experiment_small(self):
        res = run_experiment("fig2_stack", thread_counts=(2,),
                             ops_per_thread=8)
        assert set(res) == {"base", "lease"}
        assert res["base"][0].num_threads == 2

    def test_sweep_and_table(self):
        res = sweep(bench_stack,
                    {"base": {"variant": "base"}},
                    thread_counts=(2, 4), ops_per_thread=8)
        table = series_table(res)
        assert "t=2" in table and "t=4" in table
        energy = series_table(res, metric="nj_per_op")
        assert "variant" in energy
