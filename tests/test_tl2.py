"""TL2-style transactional benchmark: atomicity, conservation, abort
accounting, and the lease-variant ordering the paper reports."""

import pytest

from conftest import make_machine

from repro.stm import TL2Objects


@pytest.mark.parametrize("variant,leases", [
    ("none", False), ("single", True), ("multi", True),
])
def test_committed_updates_conserved(variant, leases):
    m = make_machine(4, leases=leases)
    tl2 = TL2Objects(m, lease=variant)
    for _ in range(4):
        m.add_thread(tl2.txn_worker, 10)
    m.run()
    m.check_coherence_invariants()
    assert m.counters.stm_commits == 40
    assert tl2.total_value_direct() == 80
    # Each object's version equals the number of transactions touching it.
    assert sum(tl2.versions_direct()) == 80


def test_unknown_variant_rejected():
    with pytest.raises(ValueError):
        TL2Objects(make_machine(1), lease="quantum")


def test_locks_all_released_at_end():
    m = make_machine(4)
    tl2 = TL2Objects(m, lease="multi")
    for _ in range(4):
        m.add_thread(tl2.txn_worker, 10)
    m.run()
    from repro.stm.tl2 import LOCK_OFF
    assert all(m.peek(obj + LOCK_OFF) == 0 for obj in tl2.objects)


def test_multilease_eliminates_aborts():
    m = make_machine(8, leases=True)
    tl2 = TL2Objects(m, lease="multi")
    for _ in range(8):
        m.add_thread(tl2.txn_worker, 10)
    m.run()
    assert m.counters.stm_aborts == 0


def test_baseline_aborts_under_contention():
    m = make_machine(8, leases=False)
    tl2 = TL2Objects(m, lease="none")
    for _ in range(8):
        m.add_thread(tl2.txn_worker, 10)
    m.run()
    assert m.counters.stm_aborts > 0


def test_variant_ordering_under_contention():
    """Paper's Figure 4/5 ordering: none <= single <= multi throughput."""
    def run(variant):
        m = make_machine(16, leases=(variant != "none"))
        tl2 = TL2Objects(m, lease=variant)
        for _ in range(16):
            m.add_thread(tl2.txn_worker, 12)
        cycles = m.run()
        return cycles

    t_none, t_single, t_multi = run("none"), run("single"), run("multi")
    assert t_multi < t_single < t_none


def test_software_multilease_close_to_hardware():
    def run(mode):
        m = make_machine(8, leases=True, multilease_mode=mode)
        tl2 = TL2Objects(m, lease="multi")
        for _ in range(8):
            m.add_thread(tl2.txn_worker, 12)
        return m.run()

    hw, sw = run("hardware"), run("software")
    assert hw <= sw <= hw * 1.5   # slight, bounded hit
