"""Algorithm 2 (MultiLease/ReleaseAll) semantics: joint acquisition in
global sort order, joint release, deadlock freedom (Proposition 3), the
software emulation, and the single/multi mixing rule."""

import pytest

from conftest import make_machine

from repro import (CAS, Lease, LeaseError, Load, MultiLease, Release,
                   ReleaseAll, SimulationTimeout, Store, Work)


class TestBasics:
    def test_multilease_holds_all_lines(self):
        m = make_machine(2)
        a, b = m.alloc_var(0), m.alloc_var(0)
        held = {}

        def t0(ctx):
            yield MultiLease((a, b), 10_000)
            mgr = m.cores[0].lease_mgr
            held["a"] = mgr.is_leased(a)
            held["b"] = mgr.is_leased(b)
            yield ReleaseAll()
            held["after"] = mgr.is_leased(a) or mgr.is_leased(b)

        m.add_thread(t0)
        m.run()
        assert held == {"a": True, "b": True, "after": False}

    def test_release_one_member_releases_group(self):
        """Section 4: MultiRelease on one address releases the whole group."""
        m = make_machine(1)
        a, b = m.alloc_var(0), m.alloc_var(0)
        held = {}

        def t0(ctx):
            yield MultiLease((a, b), 10_000)
            yield Release(a)
            mgr = m.cores[0].lease_mgr
            held["b_after"] = mgr.is_leased(b)

        m.add_thread(t0)
        m.run()
        assert held["b_after"] is False

    def test_multilease_releases_prior_leases_first(self):
        m = make_machine(1)
        a, b, c = m.alloc_var(0), m.alloc_var(0), m.alloc_var(0)
        held = {}

        def t0(ctx):
            yield Lease(a, 10_000)
            yield MultiLease((b, c), 10_000)
            mgr = m.cores[0].lease_mgr
            held["a"] = mgr.is_leased(a)
            held["b"] = mgr.is_leased(b)
            yield ReleaseAll()

        m.add_thread(t0)
        m.run()
        assert held == {"a": False, "b": True}

    def test_oversized_group_is_ignored(self):
        m = make_machine(1, max_num_leases=2)
        addrs = [m.alloc_var(0) for _ in range(3)]
        held = {}

        def t0(ctx):
            yield MultiLease(tuple(addrs), 10_000)
            mgr = m.cores[0].lease_mgr
            held["any"] = any(mgr.is_leased(x) for x in addrs)

        m.add_thread(t0)
        m.run()
        assert held["any"] is False
        assert m.counters.multilease_ignored == 1

    def test_group_expires_jointly(self):
        m = make_machine(1, max_lease_time=150)
        a, b = m.alloc_var(0), m.alloc_var(0)
        out = {}

        def t0(ctx):
            yield MultiLease((a, b), 10_000)
            yield Work(1000)
            mgr = m.cores[0].lease_mgr
            out["a"] = mgr.is_leased(a)
            out["b"] = mgr.is_leased(b)

        m.add_thread(t0)
        m.run()
        assert out == {"a": False, "b": False}

    def test_single_lease_during_multilease_rejected(self):
        m = make_machine(1)
        a, b, c = m.alloc_var(0), m.alloc_var(0), m.alloc_var(0)
        errs = []

        def t0(ctx):
            yield MultiLease((a, b), 10_000)
            try:
                yield Lease(c, 10_000)
            except LeaseError as e:
                errs.append(e)
                yield ReleaseAll()

        m.add_thread(t0)
        m.run()
        assert len(errs) == 1


class TestMutualExclusionUnderMultiLease:
    def test_joint_update_is_atomic(self):
        """Two threads jointly updating overlapping pairs never interleave
        inside the leased window (the transactional use case)."""
        m = make_machine(4, prioritize_regular_requests=False)
        words = [m.alloc_var(0) for _ in range(4)]

        def worker(ctx):
            for i in range(10):
                x, y = ctx.rng.sample(range(4), 2)
                ax, ay = words[x], words[y]
                yield MultiLease((ax, ay), 10_000)
                vx = yield Load(ax)
                vy = yield Load(ay)
                yield Work(30)
                yield Store(ax, vx + 1)
                yield Store(ay, vy + 1)
                yield ReleaseAll()

        for _ in range(4):
            m.add_thread(worker)
        m.run()
        m.check_coherence_invariants()
        total = sum(m.peek(w) for w in words)
        assert total == 4 * 10 * 2     # no lost updates

    def test_no_deadlock_on_reversed_pairs(self):
        """Proposition 3: cores requesting the same two lines in opposite
        argument orders do not deadlock (global sort order wins)."""
        m = make_machine(2, prioritize_regular_requests=False)
        a, b = m.alloc_var(0), m.alloc_var(0)

        def t0(ctx):
            for _ in range(20):
                yield MultiLease((a, b), 10_000)
                v = yield Load(a)
                yield Store(a, v + 1)
                yield ReleaseAll()

        def t1(ctx):
            for _ in range(20):
                yield MultiLease((b, a), 10_000)   # reversed order
                v = yield Load(b)
                yield Store(b, v + 1)
                yield ReleaseAll()

        m.add_thread(t0)
        m.add_thread(t1)
        m.run()                       # would SimulationTimeout on deadlock
        assert m.peek(a) == 20 and m.peek(b) == 20
        assert m.counters.releases_involuntary == 0

    def test_no_deadlock_many_cores_random_pairs(self):
        m = make_machine(8, prioritize_regular_requests=False)
        words = [m.alloc_var(0) for _ in range(5)]

        def worker(ctx):
            for _ in range(12):
                x, y = ctx.rng.sample(range(5), 2)
                yield MultiLease((words[x], words[y]), 10_000)
                vx = yield Load(words[x])
                yield Store(words[x], vx + 1)
                yield ReleaseAll()

        for _ in range(8):
            m.add_thread(worker)
        m.run()
        assert sum(m.peek(w) for w in words) == 8 * 12


class TestSoftwareEmulation:
    def test_software_mode_staggers_timeouts(self):
        """The j-th outer lease lives stagger cycles longer (Section 4)."""
        m = make_machine(1, multilease_mode="software",
                         software_stagger_cycles=200)
        a, b = m.alloc_var(0), m.alloc_var(0)
        first, second = sorted((a, b))
        out = {}

        def t0(ctx):
            yield MultiLease((a, b), 300)
            mgr = m.cores[0].lease_mgr
            # Outer (first-acquired) lease got 300+200, inner 300.
            e_first = mgr.table.get(m.amap.line_of(first))
            e_second = mgr.table.get(m.amap.line_of(second))
            out["d_first"] = e_first.duration
            out["d_second"] = e_second.duration
            yield ReleaseAll()

        m.add_thread(t0)
        m.run()
        assert out["d_first"] == 500
        assert out["d_second"] == 300

    def test_software_mode_correctness(self):
        """Joint updates stay atomic under the software emulation when
        leases are long enough."""
        m = make_machine(4, multilease_mode="software",
                         prioritize_regular_requests=False)
        words = [m.alloc_var(0) for _ in range(3)]

        def worker(ctx):
            for _ in range(10):
                x, y = ctx.rng.sample(range(3), 2)
                yield MultiLease((words[x], words[y]), 20_000)
                vx = yield Load(words[x])
                vy = yield Load(words[y])
                yield Store(words[x], vx + 1)
                yield Store(words[y], vy + 1)
                yield ReleaseAll()

        for _ in range(4):
            m.add_thread(worker)
        m.run()
        assert sum(m.peek(w) for w in words) == 4 * 10 * 2

    def test_software_mode_charges_overhead(self):
        """The emulation costs extra cycles vs hardware mode."""
        def run(mode):
            m = make_machine(1, multilease_mode=mode,
                             software_multilease_overhead_cycles=50)
            a, b = m.alloc_var(0), m.alloc_var(0)

            def t0(ctx):
                for _ in range(10):
                    yield MultiLease((a, b), 10_000)
                    yield ReleaseAll()

            m.add_thread(t0)
            return m.run()

        assert run("software") > run("hardware")


class TestGroupInteractions:
    def test_probe_on_group_line_waits_for_group_release(self):
        m = make_machine(2, prioritize_regular_requests=False)
        a, b = m.alloc_var(0), m.alloc_var(0)
        times = {}

        def holder(ctx):
            yield MultiLease((a, b), 10_000)
            yield Work(500)
            yield ReleaseAll()

        def rival(ctx):
            yield Work(300)            # after the group is surely held
            yield Store(b, 1)
            times["store"] = ctx.machine.now

        m.add_thread(holder)
        m.add_thread(rival)
        m.run()
        assert times["store"] > 500
