"""Fuzzing campaigns: targets, injected-bug detection, shrinking, replay."""

import json
from typing import Any, Generator

import pytest

import repro.check.campaign as campaign
from repro.check import (HistoryRecorder, LeasePropertyTracer,
                         PropertyViolation, ReplayStrategy, TARGETS,
                         load_repro, replay_repro, resolve_target,
                         run_campaign, run_once, shrink_failure)
from repro.check.campaign import _ddmin
from repro.core.isa import CAS, Lease, Load, Release
from repro.errors import ReproError
from repro.structures.treiber import NEXT_OFF, NIL, VALUE_OFF, TreiberStack
from repro.trace.events import (LeaseProbeQueued, LeaseStarted,
                                MultiLeaseIssued, ProbeServiced)


# -- registry -----------------------------------------------------------------

def test_resolve_target_accepts_experiment_aliases():
    assert resolve_target("fig2_stack") is TARGETS["treiber"]
    assert resolve_target("treiber") is TARGETS["treiber"]


def test_resolve_target_unknown_raises():
    with pytest.raises(ReproError, match="unknown check target"):
        resolve_target("nope")


@pytest.mark.parametrize("name", sorted(set(TARGETS) - {"sync_zoo_broken"}))
def test_target_passes_small_budget(name):
    rep = run_campaign(name, budget=4, seed=3)
    assert rep.ok, f"{name}: {rep.failure.kind}: {rep.failure.detail}"
    assert rep.schedules_run == 4
    assert rep.histories_checked == 4
    assert rep.ops_checked > 0
    assert rep.inconclusive == 0     # campaign histories stay exactly
                                     # checkable by construction


# -- contention-management zoo ------------------------------------------------

ZOO_TARGETS = ("sync_zoo_treiber", "sync_zoo_msqueue", "sync_zoo_counter")


@pytest.mark.parametrize("name", ZOO_TARGETS)
def test_zoo_campaign_runs_50_schedules_per_policy(name):
    """ISSUE 9's coverage bar: every zoo policy survives >= 50 perturbed
    schedules of its linearizability campaign on every structure."""
    rep = run_campaign(name, budget=200, seed=3)
    assert rep.ok, f"{name}: {rep.failure.kind}: {rep.failure.detail}"
    assert rep.schedules_run == 200
    assert len(rep.per_variant) == 4
    assert all(n >= 50 for n in rep.per_variant.values())


def test_zoo_broken_lock_campaign_must_fail():
    """The deliberately broken test-then-store lock proves the campaigns
    have teeth: lost counter updates surface as a linearizability (or
    final-state) failure within a handful of schedules."""
    rep = run_campaign("sync_zoo_broken", budget=12, seed=3)
    assert not rep.ok
    assert rep.failure.kind == "linearizability"
    assert rep.repro["target"] == "sync_zoo_broken"
    # The shrunken repro replays deterministically to the same failure.
    out = replay_repro(rep.repro)
    assert not out.ok


def test_run_once_reports_history_and_properties():
    target = resolve_target("treiber")
    variant, cfg = target.configs[1]          # lease variant
    out = run_once(target, variant, cfg, ReplayStrategy({}))
    assert out.ok and out.kind == "pass"
    assert out.ops == campaign.THREADS * campaign.OPS
    assert out.strategy["kind"] == "replay"
    assert "probes_checked" in out.properties


# -- injected bug -------------------------------------------------------------

class _BrokenTreiberStack(TreiberStack):
    """Treiber stack whose pop ignores the CAS outcome (drops the retry):
    under contention a failed CAS still returns the read value, so the
    node is never unlinked -- a lost update the checker must catch."""

    def pop(self, ctx) -> Generator[Any, Any, Any]:
        yield Lease(self.head, self.lease_time)
        h = yield Load(self.head)
        if h == NIL:
            yield Release(self.head)
            return None
        nxt = yield Load(h + NEXT_OFF)
        yield CAS(self.head, h, nxt)
        yield Release(self.head)
        return (yield Load(h + VALUE_OFF))


@pytest.fixture
def broken_treiber(monkeypatch):
    monkeypatch.setattr(campaign, "TreiberStack", _BrokenTreiberStack)


def test_injected_bug_is_caught_and_replayable(broken_treiber, tmp_path):
    rep = run_campaign("treiber", budget=200, seed=7)
    assert not rep.ok
    assert rep.failure.kind == "linearizability"
    assert "final state" in rep.failure.detail

    repro = rep.repro
    assert repro["format"] == campaign.REPRO_FORMAT
    assert repro["target"] == "treiber"
    # The repro round-trips through JSON and reproduces the failure.
    path = tmp_path / "repro.json"
    path.write_text(json.dumps(repro))
    out = replay_repro(load_repro(str(path)))
    assert not out.ok and out.kind == "linearizability"


def test_injected_bug_repro_is_deterministic(broken_treiber):
    rep = run_campaign("treiber", budget=50, seed=7)
    assert not rep.ok
    outs = [replay_repro(rep.repro) for _ in range(2)]
    assert outs[0].detail == outs[1].detail


def test_stock_treiber_replay_of_empty_schedule_passes():
    rep = run_campaign("treiber", budget=1, seed=7)
    assert rep.ok and rep.repro is None


# -- shrinking ----------------------------------------------------------------

def test_ddmin_finds_single_culprit():
    items = [(i, 1) for i in range(16)]
    shrunk, runs = _ddmin(items, lambda d: 11 in d, max_runs=100)
    assert shrunk == [(11, 1)]
    assert 0 < runs <= 100


def test_ddmin_keeps_interacting_pair():
    items = [(i, 1) for i in range(12)]
    shrunk, runs = _ddmin(items, lambda d: 3 in d and 9 in d, max_runs=200)
    assert sorted(k for k, _ in shrunk) == [3, 9]


def test_ddmin_respects_run_budget():
    items = [(i, 1) for i in range(64)]
    _, runs = _ddmin(items, lambda d: len(d) == 64, max_runs=10)
    assert runs <= 10


def test_shrink_failure_returns_empty_when_baseline_fails(broken_treiber):
    from dataclasses import replace
    target = resolve_target("treiber")
    variant, base_cfg = target.configs[0]
    cfg = replace(base_cfg, seed=campaign._machine_seed(7, 0))
    shrunk, runs = shrink_failure(target, variant, cfg, {100: 2, 200: 3})
    assert shrunk == {}          # the perturbation was never the trigger
    assert runs == 1


# -- load_repro validation ----------------------------------------------------

def test_load_repro_rejects_wrong_format(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(ReproError, match="not a repro-check/1"):
        load_repro(str(path))


# -- lease property tracer ----------------------------------------------------

class _FakeLease:
    max_lease_time = 100


class _FakeConfig:
    lease = _FakeLease()


class _FakeMachine:
    config = _FakeConfig()


def _ev(cls, t, *args, **kw):
    ev = cls(*args, **kw)
    ev.t = t
    return ev


def test_property_tracer_accepts_bounded_deferral():
    tr = LeasePropertyTracer()
    tr.bind(_FakeMachine())
    tr.on_event(_ev(LeaseProbeQueued, 10, 0, 0x40))
    tr.on_event(_ev(ProbeServiced, 110, 0, 0x40, "inv", False, True))
    assert tr.probes_checked == 1
    assert tr.max_observed_defer == 100


def test_property_tracer_flags_proposition1_violation():
    tr = LeasePropertyTracer()
    tr.bind(_FakeMachine())
    tr.on_event(_ev(LeaseProbeQueued, 10, 0, 0x40))
    with pytest.raises(PropertyViolation, match="Proposition 1"):
        tr.on_event(_ev(ProbeServiced, 210, 0, 0x40, "inv", False, True))


def test_property_tracer_flags_multilease_order():
    tr = LeasePropertyTracer()
    tr.bind(_FakeMachine())
    tr.on_event(_ev(MultiLeaseIssued, 5, 0, 2, False))
    tr.on_event(_ev(LeaseStarted, 6, 0, 0x80, 100))
    with pytest.raises(PropertyViolation, match="address order"):
        tr.on_event(_ev(LeaseStarted, 7, 0, 0x40, 100))


def test_property_tracer_accepts_sorted_multilease():
    tr = LeasePropertyTracer()
    tr.bind(_FakeMachine())
    tr.on_event(_ev(MultiLeaseIssued, 5, 0, 2, False))
    tr.on_event(_ev(LeaseStarted, 6, 0, 0x40, 100))
    tr.on_event(_ev(LeaseStarted, 7, 0, 0x80, 100))
    # Group complete: a later single-line lease has no ordering obligation.
    tr.on_event(_ev(LeaseStarted, 20, 0, 0x40, 100))


# -- history recorder ---------------------------------------------------------

def test_history_recorder_collects_and_validates():
    from conftest import make_machine

    m = make_machine(2)
    hist = m.attach_tracer(HistoryRecorder())
    s = TreiberStack(m)
    s.prefill([1, 2])
    for _ in range(2):
        m.add_thread(s.update_worker, 4, local_work=2)
    m.run()
    assert len(hist.records) == 8
    hist.validate()
    per_thread = hist.per_thread()
    assert set(per_thread) == {0, 1}
    for recs in per_thread.values():
        assert [r.op for r in recs] == ["push", "pop", "push", "pop"]
        assert all(r.invoked <= r.responded for r in recs)
