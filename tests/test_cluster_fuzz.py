"""The cluster lease-safety fuzz campaign (``repro.check.cluster``):
the seeded {loss x partition x skew x 2-5 nodes} grid holds the
at-most-one-holder property, a deliberately broken quorum is caught,
and failures produce replayable ``repro-cluster/1`` files."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.check import (CLUSTER_REPRO_FORMAT, CLUSTER_SPEC_GRID, NODE_GRID,
                         ReplayStrategy, cluster_config_for,
                         replay_cluster_repro, run_cluster_campaign,
                         run_cluster_once)
from repro.check.cluster import _shrink_cluster_failure
from repro.errors import ReproError

# -- positive grid: safety holds under every kind of weather ------------------

# One cell per {fault family x cluster size} pairing; together with the
# campaign tests below this exceeds the 50-schedule acceptance bar.
GRID = [
    (n, spec)
    for spec in ("",                                    # reliable
                 "loss:p=0.15",                         # message loss
                 "partition:p=0.08,len=1500,check=300",  # partitions
                 "skew:100",                            # timer skew
                 CLUSTER_SPEC_GRID[-1])                 # everything at once
    for n in NODE_GRID
]


@pytest.mark.parametrize("nodes,spec", GRID,
                         ids=[f"n{n}-{s.split(':')[0] or 'reliable'}"
                              for n, s in GRID])
def test_lease_safety_holds(nodes, spec):
    ccfg = cluster_config_for(nodes=nodes, cluster_spec=spec, seed=7)
    out = run_cluster_once(ccfg, ReplayStrategy({}))
    assert out.ok, f"{out.kind}: {out.detail}"
    assert out.properties["acquires_checked"] > 0
    assert out.properties["max_live_holders"] == 1


def test_campaign_sweeps_clean(tmp_path):
    report = run_cluster_campaign(budget=32, seed=3)
    assert report.failure is None
    assert report.schedules_run == 32
    # The sweep actually cycled both grids.
    variants = set(report.per_variant)
    assert {v.split("/")[0] for v in variants} == {"n2", "n3", "n4", "n5"}
    assert any("/" not in v for v in variants)      # reliable cells
    assert any("loss" in v for v in variants)       # lossy cells


def test_campaign_treiber_structure():
    report = run_cluster_campaign(budget=8, seed=5, structure="treiber",
                                  nodes=3)
    assert report.failure is None
    assert report.ops_checked > 0


# -- negative: broken quorum must be caught -----------------------------------

def test_broken_quorum_caught():
    report = run_cluster_campaign(budget=8, seed=1, nodes=3, quorum=1)
    assert report.failure is not None
    assert report.failure.kind == "property"
    assert "cluster lease safety violated" in report.failure.detail
    assert report.repro["format"] == CLUSTER_REPRO_FORMAT
    assert report.repro["quorum"] == 1


def test_broken_quorum_repro_replays(tmp_path):
    report = run_cluster_campaign(budget=4, seed=1, nodes=2, quorum=1)
    assert report.repro is not None
    out = replay_cluster_repro(report.repro)
    assert not out.ok
    assert out.kind == "property"


# -- shrinking ----------------------------------------------------------------

def test_shrink_returns_empty_map_when_schedule_irrelevant():
    # quorum=1 fails even unperturbed, so the minimal repro is the empty
    # decision map and ddmin never engages.
    ccfg = cluster_config_for(nodes=2, cluster_spec="", seed=1, quorum=1)
    shrunk, runs = _shrink_cluster_failure(
        ccfg, "counter", {3: 1, 7: 0, 11: 1})
    assert shrunk == {}
    assert runs == 1


def test_shrink_empty_decisions_is_noop():
    ccfg = cluster_config_for(nodes=2, cluster_spec="", seed=1, quorum=1)
    assert _shrink_cluster_failure(ccfg, "counter", {}) == ({}, 0)


# -- repro files + CLI --------------------------------------------------------

def test_replay_rejects_wrong_format():
    with pytest.raises(ReproError, match="repro-cluster/1"):
        replay_cluster_repro({"format": "repro-check/1"})


def test_cli_campaign_pass(capsys):
    rc = main(["check", "cluster_lease", "--budget", "6", "--nodes", "2",
               "--seed", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "no failures" in out


def test_cli_campaign_negative_saves_replayable_repro(tmp_path, capsys):
    save = tmp_path / "repro.cluster.json"
    rc = main(["check", "cluster_lease", "--budget", "4", "--nodes", "3",
               "--quorum", "1", "--save", str(save)])
    assert rc == 1
    capsys.readouterr()
    data = json.loads(save.read_text())
    assert data["format"] == CLUSTER_REPRO_FORMAT
    assert data["failure"]["kind"] == "property"

    # And the CLI replay path routes on the format marker; exit 0 means
    # the recorded failure reproduced.
    rc = main(["check", "replay", str(save)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "replay reproduced the failure: [property]" in out


def test_cli_replay_that_does_not_reproduce(tmp_path, capsys):
    # A hand-built repro of a passing cell replays cleanly, which for a
    # replay is the *failure* outcome (exit 1).
    repro = {
        "format": CLUSTER_REPRO_FORMAT,
        "structure": "counter",
        "nodes": 2,
        "quorum": None,
        "cluster_spec": "loss:p=0.1",
        "machine_seed": 42,
        "engine": "fast",
        "decisions": {},
    }
    path = tmp_path / "repro.json"
    path.write_text(json.dumps(repro))
    assert main(["check", "replay", str(path)]) == 1
    assert "did not reproduce" in capsys.readouterr().out
