"""Contended interconnect (``repro.coherence.links``): spec grammar,
arbiter properties, counter conservation, default-spec bit-identity, and
checkpoint roundtrips through saturated link state.

The headline contracts under test:

* an empty/``infinite`` spec builds the plain contention-free
  :class:`MeshNetwork` -- no queues exist, behaviour is bit-identical to
  the pre-links model, and the fast/compat engines still agree;
* a finite spec conserves messages (every send is granted exactly once,
  per-flow FIFO order holds on every link) and stays bit-identical
  across engines and across a mid-run checkpoint/restore cut.
"""

from __future__ import annotations

import dataclasses
import json
from collections import deque
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConfigError, Machine, MachineConfig
from repro.coherence.links import (FifoArbiter, LinkedNetwork,
                                   PriorityArbiter, WrrArbiter,
                                   build_network, parse_network_spec)
from repro.coherence.network import MeshNetwork
from repro.structures import LockedCounter, TreiberStack

#: A spec that saturates under the contended workloads below.
SAT_SPEC = "link:bw=2,queue=8,flits=4;arb:wrr,weights=2:1;port:dir=2,mem=4"


# ---------------------------------------------------------------------------
# Spec grammar
# ---------------------------------------------------------------------------

def test_parse_full_spec():
    s = parse_network_spec(SAT_SPEC)
    assert s.link_bw == 2
    assert s.link_queue == 8
    assert s.data_flits == 4
    assert s.arbiter == "wrr"
    assert s.wrr_weights == (2, 1)
    assert s.dir_port == 2
    assert s.mem_port == 4
    assert not s.empty


def test_parse_empty_and_infinite_are_empty():
    assert parse_network_spec("").empty
    assert parse_network_spec("  ").empty
    assert parse_network_spec(None).empty
    assert parse_network_spec("infinite").empty
    assert parse_network_spec("INFINITE").empty


def test_partial_specs():
    assert parse_network_spec("link:bw=1").link_queue == 0  # unbounded
    s = parse_network_spec("port:dir=3")
    assert s.dir_port == 3 and s.mem_port == 0 and s.link_bw == 0
    assert not s.empty
    assert parse_network_spec("arb:priority;link:bw=2").arbiter == "priority"


@pytest.mark.parametrize("bad,msg", [
    ("bogus:bw=1", "unknown clause"),
    ("link:", "needs bw="),
    ("link:bw=0", "must be >= 1"),
    ("link:bw=x", "must be an int"),
    ("link:bw=2,zap=1", "unknown parameter"),
    ("link:bw=2;link:bw=3", "duplicate clause"),
    ("arb:roulette", "unknown arbiter"),
    ("arb:fifo,weights=2:1", "only applies to arb:wrr"),
    ("arb:wrr,weights=2", "must be <control>:<data>"),
    ("arb:wrr,weights=2:0", "must be >= 1"),
    ("port:", "needs dir=<cycles> and/or"),
    ("port:queue=0", "must be >= 1"),
])
def test_parse_rejects_malformed_specs(bad, msg):
    with pytest.raises(ConfigError, match=msg):
        parse_network_spec(bad)


def test_network_config_validates_spec():
    with pytest.raises(ConfigError, match="unknown clause"):
        MachineConfig(network=replace(MachineConfig().network,
                                      spec="nope:1"))


# ---------------------------------------------------------------------------
# Arbiter properties (hypothesis)
# ---------------------------------------------------------------------------

def _fill(flows: list[int]):
    """Per-flow deques of ``(seq, flow)`` items from a flow sequence."""
    queues = (deque(), deque())
    for seq, flow in enumerate(flows):
        queues[flow].append((seq, flow))
    return queues


def _drain(arb, queues):
    grants = []
    while True:
        flow = arb.pick(queues)
        if flow < 0:
            return grants
        grants.append(queues[flow].popleft())


ARBS = [FifoArbiter, PriorityArbiter, lambda: WrrArbiter((2, 1))]


@settings(max_examples=60, deadline=None)
@given(flows=st.lists(st.integers(0, 1), max_size=120),
       arb_idx=st.integers(0, len(ARBS) - 1))
def test_arbiters_conserve_and_keep_flow_order(flows, arb_idx):
    """Every enqueued item is granted exactly once, and grants within a
    flow stay in arrival order, for every arbiter."""
    queues = _fill(flows)
    grants = _drain(ARBS[arb_idx](), queues)
    assert sorted(g[0] for g in grants) == list(range(len(flows)))
    for flow in (0, 1):
        seqs = [g[0] for g in grants if g[1] == flow]
        assert seqs == sorted(seqs)


@settings(max_examples=60, deadline=None)
@given(flows=st.lists(st.integers(0, 1), max_size=120))
def test_fifo_arbiter_is_global_arrival_order(flows):
    grants = _drain(FifoArbiter(), _fill(flows))
    assert [g[0] for g in grants] == list(range(len(flows)))


@settings(max_examples=40, deadline=None)
@given(flows=st.lists(st.integers(0, 1), min_size=2, max_size=120))
def test_priority_arbiter_serves_control_first(flows):
    grants = _drain(PriorityArbiter(), _fill(flows))
    n_ctl = flows.count(0)
    assert all(g[1] == 0 for g in grants[:n_ctl])
    assert all(g[1] == 1 for g in grants[n_ctl:])


@settings(max_examples=30, deadline=None)
@given(w0=st.integers(1, 5), w1=st.integers(1, 5),
       rounds=st.integers(10, 60))
def test_wrr_grant_ratio_tracks_weights(w0, w1, rounds):
    """Against a permanent backlog on both flows, grant counts over whole
    WRR rounds hit the weight ratio exactly."""
    arb = WrrArbiter((w0, w1))
    queues = (deque((i, 0) for i in range(10_000)),
              deque((i, 1) for i in range(10_000)))
    counts = [0, 0]
    for _ in range(rounds * (w0 + w1)):
        flow = arb.pick(queues)
        queues[flow].popleft()
        counts[flow] += 1
    assert counts[0] * w1 == counts[1] * w0


def test_wrr_state_roundtrip():
    arb = WrrArbiter((3, 2))
    queues = (deque([(0, 0), (1, 0)]), deque([(2, 1)]))
    arb.pick(queues)
    clone = WrrArbiter((3, 2))
    clone.load_state(json.loads(json.dumps(arb.state_dict())))
    assert clone.state_dict() == arb.state_dict()


# ---------------------------------------------------------------------------
# Default spec: no queues, bit-identical behaviour
# ---------------------------------------------------------------------------

def _counter_machine(cfg: MachineConfig) -> Machine:
    m = Machine(cfg)
    c = LockedCounter(m, lock="tts")
    for _ in range(cfg.num_cores):
        m.add_thread(c.update_worker, 6)
    return m


def _result_of(cfg: MachineConfig):
    m = _counter_machine(cfg)
    m.run()
    return dataclasses.asdict(m.result()), m.sim.events_processed, m.sim.now


def test_empty_spec_builds_plain_mesh():
    m = Machine(MachineConfig(num_cores=2))
    assert type(m.network) is MeshNetwork
    assert not m.network.contended
    cfg = MachineConfig(num_cores=2)
    m2 = Machine(replace(cfg, network=replace(cfg.network,
                                              spec="infinite")))
    assert type(m2.network) is MeshNetwork


IDENTITY_GRID = [
    # (protocol, leases, faults, engine)
    ("msi", True, "", "fast"),
    ("msi", False, "", "compat"),
    ("mesi", True, "", "compat"),
    ("mesi", False, "net_jitter:p=0.2,max=6", "fast"),
    ("msi", True, "dir_nack:p=0.1;timer_skew:4", "fast"),
    ("mesi", True, "net_jitter:p=0.1,max=9;dir_nack:p=0.05", "compat"),
]


@pytest.mark.parametrize("protocol,leases,faults,engine", IDENTITY_GRID,
                         ids=lambda v: str(v))
def test_infinite_spec_is_bit_identical(protocol, leases, faults, engine):
    """``spec="infinite"`` must match the spec-less build field-for-field
    (RunResult, event count, final cycle) across the protocol x leases x
    faults x engine grid -- the default path builds the identical plain
    MeshNetwork, so nothing may diverge."""
    cfg = MachineConfig(num_cores=4, protocol=protocol, fault_spec=faults,
                        engine=engine)
    cfg = cfg.with_leases(leases)
    plain = _result_of(cfg)
    inf = _result_of(replace(cfg, network=replace(cfg.network,
                                                  spec="infinite")))
    assert plain == inf
    # Link counters exist but stay zero on the contention-free model.
    counters = plain[0]["counters"]
    assert counters["link_flits"] == 0
    assert counters["link_stall_cycles"] == 0
    assert counters["port_stalls"] == 0


# ---------------------------------------------------------------------------
# Contended runs: conservation, engine identity, degrade determinism
# ---------------------------------------------------------------------------

def _contended_cfg(spec: str = SAT_SPEC, *, leases: bool = False,
                   faults: str = "", engine: str = "fast",
                   cores: int = 4) -> MachineConfig:
    cfg = MachineConfig(num_cores=cores, fault_spec=faults, engine=engine)
    cfg = cfg.with_leases(leases)
    return replace(cfg, network=replace(cfg.network, spec=spec))


def test_contended_run_conserves_messages():
    """With an egress link on every tile, each traced message is granted
    a link exactly once: ``link_msgs == messages`` at quiescence, and the
    queues drain completely."""
    m = _counter_machine(_contended_cfg())
    m.run()
    k = m.counters
    assert isinstance(m.network, LinkedNetwork)
    assert k.link_msgs == k.messages > 0
    assert k.link_flits > k.link_msgs          # data messages cost 4 flits
    assert k.link_queued > 0                   # the hot cell saturated
    assert m.network._pending == 0
    for link in m.network._resources:
        assert link.serving is None and link.depth == 0


@pytest.mark.parametrize("spec", [
    SAT_SPEC,
    "link:bw=3",                               # unbounded queues, no ports
    "port:dir=2,mem=3,queue=4;arb:priority",   # ports only, no egress
    "link:bw=1,queue=2;arb:fifo",              # deep backpressure
])
def test_contended_fast_compat_identity(spec):
    fast = _result_of(_contended_cfg(spec, engine="fast"))
    compat = _result_of(_contended_cfg(spec, engine="compat"))
    assert fast == compat


def test_contended_result_extras():
    m = _counter_machine(_contended_cfg())
    m.run()
    res = m.result()
    assert res.extra["link_flits"] == m.counters.link_flits
    assert res.extra["link_stall_cycles"] == m.counters.link_stall_cycles
    assert res.extra["port_stalls"] == m.counters.port_stalls
    assert res.extra["link_util_pct"] > 0


def test_link_degrade_is_deterministic_and_biting():
    faults = "link_degrade:p=0.5,factor=8,queue=2"
    a = _result_of(_contended_cfg(faults=faults))
    b = _result_of(_contended_cfg(faults=faults))
    assert a == b, "same seed+spec must degrade the same links"
    healthy = _result_of(_contended_cfg(faults=""))
    assert a[0]["counters"]["faults_injected"] > 0
    assert a[0]["cycles"] > healthy[0]["cycles"], \
        "8x-degraded links should slow the contended run"


def test_link_degrade_without_contended_network_is_noop():
    cfg = MachineConfig(num_cores=4,
                        fault_spec="link_degrade:p=1.0,factor=4")
    with_hook = _result_of(cfg)
    # The hook only fires at LinkedNetwork build time; on the plain mesh
    # there is nothing to degrade and no RNG draw perturbs other streams.
    assert with_hook[0]["counters"]["faults_injected"] == 0


# ---------------------------------------------------------------------------
# Checkpoint roundtrip through saturated link state
# ---------------------------------------------------------------------------

def _build_contended_treiber(cfg: MachineConfig) -> Machine:
    m = Machine(cfg)
    s = TreiberStack(m)
    s.prefill(range(16))
    for _ in range(4):
        m.add_thread(s.update_worker, 10)
    return m


@pytest.mark.parametrize("spec,faults,cut", [
    (SAT_SPEC, "", 400),
    (SAT_SPEC, "link_degrade:p=0.5,factor=4", 300),
    ("link:bw=1,queue=2;arb:priority;port:dir=1,mem=2", "", 250),
])
def test_contended_roundtrip_is_bit_identical(spec, faults, cut):
    """Snapshot mid-run -- with messages parked inside link/port queues --
    restore into a fresh machine, and run all three (checkpointed,
    restored, uninterrupted) to completion: field-for-field identical."""
    cfg = _contended_cfg(spec, leases=True, faults=faults)

    m1 = _build_contended_treiber(cfg)
    m1.enable_checkpointing()
    m1.run(until=cut)
    in_flight = m1.network._pending
    state = json.loads(json.dumps(m1.state_dict()))
    assert "network" in state

    m2 = _build_contended_treiber(cfg)
    m2.load_state(state)
    assert m2.network._pending == in_flight
    m1.run()
    m2.run()

    m3 = _build_contended_treiber(cfg)
    m3.run()

    r1, r2, r3 = m1.result(), m2.result(), m3.result()
    assert dataclasses.asdict(r2) == dataclasses.asdict(r3)
    assert dataclasses.asdict(r1) == dataclasses.asdict(r3)


def test_default_checkpoint_has_no_network_key():
    cfg = MachineConfig(num_cores=2)
    m = Machine(cfg)
    c = LockedCounter(m, lock="tts")
    for _ in range(2):
        m.add_thread(c.update_worker, 4)
    m.enable_checkpointing()
    m.run(until=200)
    assert "network" not in m.state_dict()


def test_restore_refuses_network_mismatch():
    cfg = _contended_cfg(leases=True)
    m1 = _build_contended_treiber(cfg)
    m1.enable_checkpointing()
    m1.run(until=300)
    state = json.loads(json.dumps(m1.state_dict()))

    from repro.errors import CheckpointMismatch
    plain = replace(cfg, network=replace(cfg.network, spec=""))
    m2 = _build_contended_treiber(plain)
    with pytest.raises(CheckpointMismatch, match="interconnect"):
        m2.load_state(state)


# ---------------------------------------------------------------------------
# build_network factory
# ---------------------------------------------------------------------------

def test_build_network_factory_dispatch():
    from repro.engine import Simulator
    from repro.trace import CountersTracer, TraceBus

    sim = Simulator()
    bus = TraceBus(clock=lambda: sim.now, sinks=(CountersTracer(),))
    cfg = MachineConfig().network
    assert type(build_network(cfg, 4, sim, bus)) is MeshNetwork
    contended = build_network(replace(cfg, spec="link:bw=2"), 4, sim, bus)
    assert isinstance(contended, LinkedNetwork)
    assert contended.contended
