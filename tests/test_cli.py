"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig2_stack" in out
    assert "fig5_pagerank" in out
    assert "paper:" in out


def test_config_command(capsys):
    assert main(["config"]) == 0
    out = capsys.readouterr().out
    assert "32 KB" in out
    assert "MSI" in out
    assert "20000 cycles" in out


def test_run_command_small(capsys):
    rc = main(["run", "fig2_stack", "--threads", "2",
               "--metric", "mops_per_sec"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "base" in out and "lease" in out
    assert "t=2" in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "not_an_experiment"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_energy_metric_only(capsys):
    rc = main(["run", "fig2_stack", "--threads", "2",
               "--metric", "nj_per_op"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "energy" in out
    assert "Mops/s" not in out      # throughput table suppressed
