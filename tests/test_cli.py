"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig2_stack" in out
    assert "fig5_pagerank" in out
    assert "paper:" in out


def test_config_command(capsys):
    assert main(["config"]) == 0
    out = capsys.readouterr().out
    assert "32 KB" in out
    assert "MSI" in out
    assert "20000 cycles" in out


def test_run_command_small(capsys):
    rc = main(["run", "fig2_stack", "--threads", "2",
               "--metric", "mops_per_sec"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "base" in out and "lease" in out
    assert "t=2" in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "not_an_experiment"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_energy_metric_only(capsys):
    rc = main(["run", "fig2_stack", "--threads", "2",
               "--metric", "nj_per_op"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "energy" in out
    assert "Mops/s" not in out      # throughput table suppressed


# -- --threads validation ----------------------------------------------------

@pytest.mark.parametrize("bad", ["", "x", "2,x", "0", "-4", "2,,4", "2.5"])
def test_run_rejects_bad_threads(bad, capsys):
    assert main(["run", "fig2_stack", "--threads", bad]) == 2
    err = capsys.readouterr().err
    assert err.startswith("--threads:")
    assert err.count("\n") == 1      # exactly one line


def test_run_accepts_padded_threads(capsys):
    assert main(["run", "fig2_stack", "--threads", " 2 , 2 ",
                 "--metric", "mops_per_sec"]) == 0


# -- --jobs validation -------------------------------------------------------

@pytest.mark.parametrize("bad", ["0", "-2", "x", "1.5", ""])
def test_run_rejects_bad_jobs(bad, capsys):
    assert main(["run", "fig2_stack", "--threads", "2", "--jobs", bad]) == 2
    err = capsys.readouterr().err
    assert err.startswith("--jobs:")
    assert err.count("\n") == 1      # exactly one line


def test_bad_jobs_rejected_before_any_work(capsys):
    # Validation fires before the sweep starts: even with the full
    # default thread axis the command exits immediately.
    assert main(["run", "fig2_stack", "--jobs", "-1"]) == 2
    out, err = capsys.readouterr()
    assert err == "--jobs: -1 is not a positive job count\n"
    assert "fig2_stack:" not in out   # header never printed


# -- parallel + save ----------------------------------------------------------

def test_run_jobs_output_identical_to_serial(capsys):
    assert main(["run", "fig2_stack", "--threads", "2,4"]) == 0
    serial = capsys.readouterr().out
    assert main(["run", "fig2_stack", "--threads", "2,4",
                 "--jobs", "4"]) == 0
    assert capsys.readouterr().out == serial


def test_run_save_writes_json(tmp_path, capsys):
    import json
    out = tmp_path / "res.json"
    assert main(["run", "fig2_stack", "--threads", "2",
                 "--save", str(out)]) == 0
    data = json.loads(out.read_text())
    assert data["experiment"] == "fig2_stack"
    assert set(data["results"]) == {"base", "lease"}
    run = data["results"]["lease"][0]
    assert run["num_threads"] == 2
    assert run["counters"]["leases_requested"] > 0


def test_run_with_invariants(capsys):
    assert main(["run", "fig2_stack", "--threads", "2"] +
                ["--invariants"]) == 0
    assert "invariants: OK" in capsys.readouterr().out


def test_run_invariants_conflicts_with_jobs(capsys):
    assert main(["run", "fig2_stack", "--threads", "2", "--jobs", "2",
                 "--invariants"]) == 2


# -- trace command ------------------------------------------------------------

def test_trace_command_writes_reconciling_jsonl(tmp_path, capsys):
    import json
    out = tmp_path / "t.jsonl"
    rc = main(["trace", "fig2_stack", "--threads", "2",
               "--out", str(out), "--heatmap"])
    assert rc == 0
    stdout = capsys.readouterr().out
    assert "reconcile=ok" in stdout
    assert "stack.head" in stdout            # heatmap labels the hot line
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    summaries = [d for d in lines if d["kind"] == "run_summary"]
    assert len(summaries) == 2               # base + lease at t=2
    assert all(s["reconciled"] for s in summaries)
    events = [d for d in lines if d["kind"] != "run_summary"]
    assert all("variant" in d and "threads" in d for d in events)
    base_events = sum(d["variant"] == "base" for d in events)
    assert base_events == next(s["events"] for s in summaries
                               if s["variant"] == "base")


def test_trace_limit_truncates_file(tmp_path, capsys):
    out = tmp_path / "t.jsonl"
    rc = main(["trace", "fig2_stack", "--threads", "2",
               "--out", str(out), "--limit", "50"])
    assert rc == 0
    # 50 event lines + one run_summary line per run.
    assert len(out.read_text().splitlines()) == 50 + 2


def test_trace_default_output_name(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["trace", "fig2_stack", "--threads", "2"]) == 0
    assert (tmp_path / "fig2_stack.trace.jsonl").exists()


def test_trace_unknown_experiment(capsys):
    assert main(["trace", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_trace_rejects_bad_threads(capsys):
    assert main(["trace", "fig2_stack", "--threads", "nope"]) == 2


# -- --seed validation and effect ---------------------------------------------

@pytest.mark.parametrize("bad", ["x", "-1", "2.5", ""])
def test_run_rejects_bad_seed(bad, capsys):
    assert main(["run", "fig2_stack", "--threads", "2", "--seed", bad]) == 2
    err = capsys.readouterr().err
    assert err.startswith("--seed:")
    assert err.count("\n") == 1


def test_trace_rejects_bad_seed(tmp_path, capsys):
    assert main(["trace", "fig2_stack", "--threads", "2",
                 "--out", str(tmp_path / "t.jsonl"), "--seed", "zz"]) == 2
    assert "--seed:" in capsys.readouterr().err


def test_run_seed_changes_rng_driven_results(capsys):
    """fig3_pq picks keys from the per-thread RNG, so the seed must alter
    its numbers -- and the same seed must reproduce them exactly."""
    def run(seed):
        assert main(["run", "fig3_pq", "--threads", "2", "--seed", seed,
                     "--metric", "mops_per_sec"]) == 0
        return capsys.readouterr().out

    a, b, a2 = run("5"), run("6"), run("5")
    assert a == a2
    assert a != b


def test_trace_accepts_seed(tmp_path, capsys):
    out = tmp_path / "t.jsonl"
    assert main(["trace", "fig2_stack", "--threads", "2",
                 "--out", str(out), "--seed", "9"]) == 0
    assert "reconcile=ok" in capsys.readouterr().out


# -- check command ------------------------------------------------------------

def test_check_smoke(capsys):
    assert main(["check", "treiber", "--budget", "4", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "explored 4 schedule(s)" in out
    assert "no failures found" in out


def test_check_accepts_experiment_alias(capsys):
    assert main(["check", "fig2_stack", "--budget", "2"]) == 0
    assert "check treiber" in capsys.readouterr().out


def test_check_unknown_target(capsys):
    assert main(["check", "bogus"]) == 2
    assert "unknown check target" in capsys.readouterr().err


def test_check_rejects_bad_budget(capsys):
    assert main(["check", "treiber", "--budget", "0"]) == 2
    assert "--budget" in capsys.readouterr().err


def test_check_rejects_bad_seed(capsys):
    assert main(["check", "treiber", "--seed", "nan"]) == 2
    assert "--seed:" in capsys.readouterr().err


def test_check_replay_requires_path(capsys):
    assert main(["check", "replay"]) == 2
    assert "missing repro file" in capsys.readouterr().err


def test_check_replay_missing_file(tmp_path, capsys):
    assert main(["check", "replay", str(tmp_path / "nope.json")]) == 2
    assert "check replay:" in capsys.readouterr().err


def test_check_injected_bug_exit_code_and_replay(tmp_path, monkeypatch,
                                                 capsys):
    """End to end: a seeded campaign finds the injected linearizability
    bug, exits nonzero, writes a repro file, and `check replay` on that
    file reproduces the failure deterministically."""
    import repro.check.campaign as campaign
    from test_check_campaign import _BrokenTreiberStack

    monkeypatch.setattr(campaign, "TreiberStack", _BrokenTreiberStack)
    repro_path = tmp_path / "r.json"
    rc = main(["check", "treiber", "--budget", "200", "--seed", "7",
               "--save", str(repro_path)])
    assert rc == 1
    out = capsys.readouterr().out
    assert "FAILURE [linearizability]" in out
    assert repro_path.exists()

    assert main(["check", "replay", str(repro_path)]) == 0
    assert "reproduced the failure" in capsys.readouterr().out


# -- --metric validation ------------------------------------------------------

def test_run_accepts_any_runresult_metric(capsys):
    rc = main(["run", "fig2_stack", "--threads", "2",
               "--metric", "messages_per_op"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "messages_per_op" in out
    assert "t=2" in out


def test_run_rejects_unknown_metric(capsys):
    assert main(["run", "fig2_stack", "--threads", "2",
                 "--metric", "bogus"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("--metric:")
    assert "messages_per_op" in err      # the full list is offered


def test_series_table_rejects_unknown_metric():
    import pytest as _pytest

    from repro.harness.runner import series_table

    with _pytest.raises(ValueError, match="unknown metric 'bogus'"):
        series_table({}, metric="bogus")


# -- --faults -----------------------------------------------------------------

@pytest.mark.parametrize("cmd", [
    ["run", "fig2_stack", "--threads", "2"],
    ["trace", "fig2_stack", "--threads", "2"],
    ["check", "treiber", "--budget", "1"],
    ["bench", "event_queue", "--quick", "--repeats", "1"],
])
def test_all_commands_reject_bad_fault_spec(cmd, capsys):
    assert main(cmd + ["--faults", "nope:p=1"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("--faults:")
    assert "unknown clause" in err


def test_run_with_faults_changes_results(capsys):
    argv = ["run", "fig2_stack", "--threads", "4",
            "--metric", "cycles", "--seed", "7"]
    assert main(argv) == 0
    clean = capsys.readouterr().out
    assert main(argv + ["--faults",
                        "net_jitter:p=0.2,max=400;dir_nack:p=0.1"]) == 0
    faulty = capsys.readouterr().out
    assert clean != faulty


def test_trace_with_faults_emits_fault_events(tmp_path, capsys):
    out_path = tmp_path / "t.jsonl"
    rc = main(["trace", "fig2_stack", "--threads", "2",
               "--faults", "dir_nack:p=0.05", "--out", str(out_path)])
    assert rc == 0
    assert "reconcile=ok" in capsys.readouterr().out
    assert '"kind":"dir_nack"' in out_path.read_text()


def test_check_with_faults_passes_and_announces(capsys):
    rc = main(["check", "counter", "--budget", "3", "--seed", "5",
               "--faults", "timer_skew:4"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fault campaign: timer_skew:4" in out
    assert "no failures found" in out


def test_check_replay_rejects_faults_flag(tmp_path, capsys):
    assert main(["check", "replay", str(tmp_path / "r.json"),
                 "--faults", "timer_skew:4"]) == 2
    assert "recorded in the repro file" in capsys.readouterr().err


# -- checkpointing flags (repro.state) ---------------------------------------

def test_run_checkpoint_every_saves_and_warm_start_restores(tmp_path,
                                                            capsys):
    ckpt_dir = str(tmp_path / "ckpts")
    argv = ["run", "fig2_stack", "--threads", "2", "--seed", "7",
            "--metric", "mops_per_sec"]
    assert main(argv + ["--checkpoint-every", "2000",
                        "--checkpoint-dir", ckpt_dir]) == 0
    out = capsys.readouterr().out
    assert "saved" in out and "checkpoint(s)" in out
    files = list((tmp_path / "ckpts").glob("ckpt_*_c*.json"))
    assert files, "no checkpoint files were written"

    # Cold run for the reference numbers.
    assert main(argv) == 0
    cold = capsys.readouterr().out

    # Warm start resumes from the saved prefixes and matches exactly.
    assert main(argv + ["--warm-start", "--checkpoint-dir", ckpt_dir]) == 0
    warm = capsys.readouterr().out
    assert "restored" in warm
    assert warm.splitlines()[-4:] == cold.splitlines()[-4:]


def test_run_resume_restores_matching_cell(tmp_path, capsys):
    ckpt_dir = tmp_path / "ckpts"
    argv = ["run", "fig2_stack", "--threads", "2", "--seed", "7",
            "--metric", "mops_per_sec"]
    assert main(argv + ["--checkpoint-every", "2000",
                        "--checkpoint-dir", str(ckpt_dir)]) == 0
    capsys.readouterr()
    ckpt = sorted(ckpt_dir.glob("ckpt_*_c*.json"))[0]
    assert main(argv + ["--resume", str(ckpt)]) == 0
    assert "restored" in capsys.readouterr().out


def test_run_resume_refuses_mismatched_config(tmp_path, capsys):
    ckpt_dir = tmp_path / "ckpts"
    argv = ["run", "fig2_stack", "--threads", "2", "--seed", "7"]
    assert main(argv + ["--checkpoint-every", "2000",
                        "--checkpoint-dir", str(ckpt_dir)]) == 0
    capsys.readouterr()
    ckpt = sorted(ckpt_dir.glob("ckpt_*_c*.json"))[0]
    # Different seed: the checkpoint matches no cell -> hard refusal.
    rc = main(["run", "fig2_stack", "--threads", "2", "--seed", "8",
               "--resume", str(ckpt)])
    assert rc == 2
    err = capsys.readouterr().err
    assert "matched no sweep cell" in err and "seed" in err


def test_run_checkpoint_flags_require_serial(capsys):
    assert main(["run", "fig2_stack", "--threads", "2", "--jobs", "2",
                 "--checkpoint-every", "1000"]) == 2
    assert "--jobs 1" in capsys.readouterr().err


def test_run_rejects_bad_checkpoint_interval(capsys):
    assert main(["run", "fig2_stack", "--threads", "2",
                 "--checkpoint-every", "0"]) == 2
    assert "--checkpoint-every" in capsys.readouterr().err


def test_run_resume_missing_file(tmp_path, capsys):
    assert main(["run", "fig2_stack", "--threads", "2",
                 "--resume", str(tmp_path / "nope.json")]) == 2
    assert "--resume:" in capsys.readouterr().err


def test_check_list_targets(capsys):
    assert main(["check", "--list-targets"]) == 0
    out = capsys.readouterr().out
    assert "treiber" in out and "multilease" in out
    assert "fig2_stack->treiber" in out


def test_check_requires_target_or_list(capsys):
    assert main(["check"]) == 2
    assert "--list-targets" in capsys.readouterr().err


def test_bench_list(capsys):
    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    assert "snapshot_roundtrip" in out and "event_queue" in out


def test_bench_seed_recorded(tmp_path, capsys):
    import json as _json

    rc = main(["bench", "event_queue", "--quick", "--repeats", "1",
               "--seed", "11", "--out-dir", str(tmp_path)])
    assert rc == 0
    rec = _json.loads((tmp_path / "BENCH_event_queue.json").read_text())
    assert rec["seed"] == 11


def test_bench_rejects_bad_seed(capsys):
    assert main(["bench", "event_queue", "--seed", "-3"]) == 2
    assert "--seed:" in capsys.readouterr().err
