"""Algorithm 1 (single-location Lease/Release) semantics, end to end.

Each test drives real threads on a small machine and checks the behaviour
the paper specifies: probe queuing, bounded delay, voluntary/involuntary
release, FIFO replacement, no lease extension, the prioritization rule.
"""

import pytest

from conftest import make_machine

from repro import (CAS, Lease, LeaseError, Load, Release, Store, Work)
from repro.coherence.states import LineState


class TestBasicLease:
    def test_lease_brings_line_exclusive(self):
        m = make_machine(2)
        addr = m.alloc_var(0)
        states = {}

        def t0(ctx):
            yield Lease(addr, 1000)
            states["during"] = \
                m.cores[0].memunit.l1.state_of(m.amap.line_of(addr))
            yield Release(addr)

        m.add_thread(t0)
        m.run()
        assert states["during"] == LineState.M

    def test_release_returns_voluntary_true(self):
        m = make_machine(1)
        addr = m.alloc_var(0)
        out = {}

        def t0(ctx):
            yield Lease(addr, 1000)
            out["vol"] = yield Release(addr)

        m.add_thread(t0)
        m.run()
        assert out["vol"] is True
        assert m.counters.releases_voluntary == 1

    def test_release_after_expiry_returns_false(self):
        m = make_machine(1)
        addr = m.alloc_var(0)
        out = {}

        def t0(ctx):
            yield Lease(addr, 50)
            yield Work(500)            # lease expires meanwhile
            out["vol"] = yield Release(addr)

        m.add_thread(t0)
        m.run()
        assert out["vol"] is False
        assert m.counters.releases_involuntary == 1

    def test_release_unleased_line_is_noop(self):
        m = make_machine(1)
        addr = m.alloc_var(0)
        out = {}

        def t0(ctx):
            out["vol"] = yield Release(addr)

        m.add_thread(t0)
        m.run()
        assert out["vol"] is False

    def test_no_extension_of_held_lease(self):
        """Re-leasing a held line must NOT reset its counter (footnote 1)."""
        m = make_machine(1)
        addr = m.alloc_var(0)
        out = {}

        def t0(ctx):
            yield Lease(addr, 100)
            yield Work(60)
            yield Lease(addr, 100)     # would extend to t=160 if buggy
            yield Work(60)             # original expires at ~t<=120+grant
            out["vol"] = yield Release(addr)

        m.add_thread(t0)
        m.run()
        assert out["vol"] is False
        assert m.counters.leases_noop_already_held == 1

    def test_time_capped_at_max_lease_time(self):
        m = make_machine(1, max_lease_time=100)
        addr = m.alloc_var(0)
        out = {}

        def t0(ctx):
            yield Lease(addr, 10_000_000)
            yield Work(200)
            out["vol"] = yield Release(addr)

        m.add_thread(t0)
        m.run()
        assert out["vol"] is False     # expired at the 100-cycle cap

    def test_leases_disabled_are_noops(self):
        m = make_machine(1, leases=False)
        addr = m.alloc_var(0)
        cycles = {}

        def t0(ctx):
            yield Lease(addr, 1000)
            yield Store(addr, 1)
            yield Release(addr)

        m.add_thread(t0)
        m.run()
        assert m.counters.leases_requested == 0
        assert m.counters.leases_granted == 0


class TestFifoReplacement:
    def test_table_overflow_releases_oldest(self):
        m = make_machine(1, max_num_leases=2)
        a, b, c = m.alloc_var(0), m.alloc_var(0), m.alloc_var(0)
        out = {}

        def t0(ctx):
            yield Lease(a, 10_000)
            yield Lease(b, 10_000)
            yield Lease(c, 10_000)     # evicts a
            out["a"] = yield Release(a)
            out["b"] = yield Release(b)
            out["c"] = yield Release(c)

        m.add_thread(t0)
        m.run()
        assert out["a"] is False       # already auto-released
        assert out["b"] is True
        assert out["c"] is True
        assert m.counters.releases_fifo_eviction == 1


class TestProbeQueuing:
    def test_probe_waits_for_voluntary_release(self):
        """A writer's request on a leased line is served only after the
        holder releases -- and the holder's CAS wins meanwhile.
        (Prioritization off: we are testing the queuing path itself.)"""
        m = make_machine(2, prioritize_regular_requests=False)
        addr = m.alloc_var(0)
        t_store_done = {}

        def holder(ctx):
            yield Lease(addr, 10_000)
            v = yield Load(addr)
            yield Work(300)
            ok = yield CAS(addr, v, "holder")
            assert ok                   # lease guarantees no interference
            yield Release(addr)

        def rival(ctx):
            yield Work(60)              # let the lease be taken first
            yield Store(addr, "rival")
            t_store_done["t"] = ctx.machine.now

        m.add_thread(holder)
        m.add_thread(rival)
        m.run()
        m.check_coherence_invariants()
        # The rival's store committed after the holder's CAS (queued).
        assert m.peek(addr) == "rival"
        assert t_store_done["t"] > 300
        assert m.counters.probes_queued_at_core == 1

    def test_probe_released_by_expiry(self):
        """An involuntary release unblocks the queued probe (bounded
        delay: Proposition 2).  Prioritization off to exercise queuing."""
        m = make_machine(2, prioritize_regular_requests=False)
        addr = m.alloc_var(0)
        times = {}

        def holder(ctx):
            yield Lease(addr, 200)
            yield Work(100_000)         # never releases explicitly
            times["holder_done"] = ctx.machine.now

        def rival(ctx):
            yield Work(50)
            yield Store(addr, 1)
            times["store"] = ctx.machine.now

        m.add_thread(holder)
        m.add_thread(rival)
        m.run()
        assert m.counters.releases_involuntary == 1
        # The store waited for the expiry but not much longer.
        assert times["store"] < 200 + 200
        assert m.peek(addr) == 1

    def test_delay_bounded_by_max_lease_time(self):
        """Proposition 2: no request waits more than MAX_LEASE_TIME beyond
        normal processing, even against an abusive holder."""
        m = make_machine(2, max_lease_time=500,
                         prioritize_regular_requests=False)
        addr = m.alloc_var(0)
        times = {}

        def abusive(ctx):
            while True:
                yield Lease(addr, 1 << 60)
                yield Work(400)
                vol = yield Release(addr)
                if ctx.machine.now > 3000:
                    return

        def victim(ctx):
            yield Work(20)
            start = ctx.machine.now
            yield Store(addr, 1)
            times["wait"] = ctx.machine.now - start

        m.add_thread(abusive)
        m.add_thread(victim)
        m.run()
        assert times["wait"] <= 500 + 200   # lease bound + protocol slack


class TestPrioritization:
    def test_regular_store_breaks_lease_when_enabled(self):
        m = make_machine(2, prioritize_regular_requests=True)
        addr = m.alloc_var(0)
        times = {}

        def holder(ctx):
            yield Lease(addr, 10_000)
            yield Work(5_000)
            yield Release(addr)

        def rival(ctx):
            yield Work(50)
            yield Store(addr, 1)
            times["store"] = ctx.machine.now

        m.add_thread(holder)
        m.add_thread(rival)
        m.run()
        assert m.counters.releases_broken_by_priority == 1
        assert times["store"] < 500        # did not wait for the lease

    def test_lease_request_still_queues_when_enabled(self):
        m = make_machine(2, prioritize_regular_requests=True)
        addr = m.alloc_var(0)
        times = {}

        def holder(ctx):
            yield Lease(addr, 10_000)
            yield Work(600)
            yield Release(addr)

        def rival(ctx):
            yield Work(50)
            yield Lease(addr, 10_000)   # lease-priority: must queue
            times["granted"] = ctx.machine.now
            yield Release(addr)

        m.add_thread(holder)
        m.add_thread(rival)
        m.run()
        assert m.counters.releases_broken_by_priority == 0
        assert times["granted"] > 600
        assert m.counters.probes_queued_at_core == 1

    def test_store_queues_when_disabled(self):
        m = make_machine(2, prioritize_regular_requests=False)
        addr = m.alloc_var(0)
        times = {}

        def holder(ctx):
            yield Lease(addr, 10_000)
            yield Work(600)
            yield Release(addr)

        def rival(ctx):
            yield Work(50)
            yield Store(addr, 1)
            times["store"] = ctx.machine.now

        m.add_thread(holder)
        m.add_thread(rival)
        m.run()
        assert times["store"] > 600
        assert m.counters.releases_broken_by_priority == 0


class TestLeaseStacking:
    def test_two_cores_lease_same_line_sequentialize(self):
        """The second lease is granted only after the first is released;
        both critical windows execute without interference."""
        m = make_machine(2)
        addr = m.alloc_var(0)
        log = []

        def worker(ctx, tag):
            yield Work(tag)            # skew start
            yield Lease(addr, 10_000)
            log.append((tag, "in", ctx.machine.now))
            v = yield Load(addr)
            yield Work(200)
            yield Store(addr, v + 1)
            log.append((tag, "out", ctx.machine.now))
            yield Release(addr)

        m.add_thread(worker, 1)
        m.add_thread(worker, 2)
        m.run()
        assert m.peek(addr) == 2
        # Windows must not overlap.
        w1 = [t for tag, _, t in log if tag == 1]
        w2 = [t for tag, _, t in log if tag == 2]
        assert max(w1) <= min(w2) or max(w2) <= min(w1)

    def test_stale_release_after_line_stolen(self):
        """If a lease expires and the line moves away, the late Release
        must not disturb the new owner."""
        m = make_machine(2)
        addr = m.alloc_var(0)

        def sleepy(ctx):
            yield Lease(addr, 100)
            yield Work(2000)
            vol = yield Release(addr)
            assert vol is False

        def thief(ctx):
            yield Work(300)
            yield Lease(addr, 10_000)
            yield Store(addr, "thief")
            yield Work(2500)
            yield Release(addr)

        m.add_thread(sleepy)
        m.add_thread(thief)
        m.run()
        m.check_coherence_invariants()
        assert m.peek(addr) == "thief"


class TestCASUnderLease:
    def test_read_cas_window_always_succeeds(self):
        """The Figure 1 claim: with the read-CAS window under a lease, the
        CAS never fails (absent expiry)."""
        m = make_machine(4)
        addr = m.alloc_var(0)

        def worker(ctx):
            for _ in range(20):
                yield Lease(addr, 10_000)
                v = yield Load(addr)
                ok = yield CAS(addr, v, v + 1)
                yield Release(addr)
                assert ok

        for _ in range(4):
            m.add_thread(worker)
        m.run()
        assert m.peek(addr) == 80
        assert m.counters.cas_failures == 0
