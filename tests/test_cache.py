"""L1 cache model: LRU, state transitions, pinning, over-fill."""

import pytest

from repro.coherence import L1Cache
from repro.coherence.states import LineState
from repro.errors import ProtocolError
from repro.trace import CountersTracer, TraceBus


def make_cache(num_sets=2, assoc=2):
    return L1Cache(num_sets, assoc, TraceBus())


def make_counted_cache(num_sets, assoc):
    sink = CountersTracer()
    return L1Cache(num_sets, assoc, TraceBus(sinks=(sink,))), sink.counters


def test_initially_invalid():
    c = make_cache()
    assert c.state_of(0) == LineState.I


def test_fill_and_state():
    c = make_cache()
    assert c.fill(0, LineState.S) is None
    assert c.state_of(0) == LineState.S


def test_fill_upgrade_in_place():
    c = make_cache()
    c.fill(0, LineState.S)
    assert c.fill(0, LineState.M) is None
    assert c.state_of(0) == LineState.M


def test_lru_eviction_order():
    c = make_cache(num_sets=1, assoc=2)
    c.fill(0, LineState.S)
    c.fill(1, LineState.S)
    c.touch(0)                      # 1 becomes LRU
    victim = c.fill(2, LineState.S)
    assert victim == (1, LineState.S)
    assert c.state_of(1) == LineState.I


def test_eviction_reports_dirty_state():
    c = make_cache(num_sets=1, assoc=1)
    c.fill(0, LineState.M)
    victim = c.fill(1, LineState.S)
    assert victim == (0, LineState.M)


def test_lines_map_to_sets():
    c = make_cache(num_sets=2, assoc=1)
    c.fill(0, LineState.S)          # set 0
    c.fill(1, LineState.S)          # set 1 -- no eviction
    assert c.state_of(0) == LineState.S
    assert c.state_of(1) == LineState.S


def test_pinned_lines_survive_eviction():
    c = make_cache(num_sets=1, assoc=2)
    c.fill(0, LineState.M)
    c.pin(0)
    c.fill(2, LineState.S)
    victim = c.fill(4, LineState.S)   # must evict 2, not pinned 0
    assert victim == (2, LineState.S)
    assert c.state_of(0) == LineState.M


def test_all_pinned_overfills():
    c, k = make_counted_cache(1, 2)
    c.fill(0, LineState.M)
    c.fill(2, LineState.M)
    c.pin(0)
    c.pin(2)
    victim = c.fill(4, LineState.S)
    assert victim is None
    assert k.l1_eviction_overflows == 1
    assert c.state_of(0) == LineState.M
    assert c.state_of(2) == LineState.M
    assert c.state_of(4) == LineState.S


def test_invalidate_clears_pin():
    c = make_cache()
    c.fill(0, LineState.M)
    c.pin(0)
    c.invalidate(0)
    assert not c.is_pinned(0)
    assert c.state_of(0) == LineState.I


def test_set_state_downgrade():
    c = make_cache()
    c.fill(0, LineState.M)
    c.set_state(0, LineState.S)
    assert c.state_of(0) == LineState.S


def test_set_state_on_absent_line_rejected():
    c = make_cache()
    with pytest.raises(ProtocolError):
        c.set_state(0, LineState.S)


def test_set_state_to_invalid_rejected():
    c = make_cache()
    c.fill(0, LineState.S)
    with pytest.raises(ProtocolError):
        c.set_state(0, LineState.I)


def test_eviction_counter():
    c, k = make_counted_cache(1, 1)
    c.fill(0, LineState.S)
    c.fill(1, LineState.S)
    c.fill(2, LineState.S)
    assert k.l1_evictions == 2


def test_resident_lines():
    c = make_cache()
    c.fill(0, LineState.S)
    c.fill(1, LineState.M)
    assert set(c.resident_lines()) == {0, 1}
