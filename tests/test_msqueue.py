"""Michael-Scott queue: FIFO semantics, per-producer order, conservation,
and the Algorithm 3 lease variants."""

import pytest
from hypothesis import given, settings, strategies as st

from conftest import make_machine

from repro.structures import MichaelScottQueue


class TestSequential:
    def test_fifo_order(self, machine1):
        q = MichaelScottQueue(machine1)
        out = []

        def body(ctx):
            for v in (1, 2, 3):
                yield from q.enqueue(ctx, v)
            for _ in range(4):
                out.append((yield from q.dequeue(ctx)))

        machine1.add_thread(body)
        machine1.run()
        assert out == [1, 2, 3, None]

    def test_dequeue_empty(self, machine1):
        q = MichaelScottQueue(machine1)
        out = []

        def body(ctx):
            out.append((yield from q.dequeue(ctx)))

        machine1.add_thread(body)
        machine1.run()
        assert out == [None]

    def test_prefill(self, machine1):
        q = MichaelScottQueue(machine1)
        q.prefill([5, 6, 7])
        assert q.drain_direct() == [5, 6, 7]

    @given(st.lists(st.sampled_from(["enq", "deq"]), max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_deque_model(self, ops):
        from collections import deque
        m = make_machine(1)
        q = MichaelScottQueue(m)
        model = deque()
        expect, got = [], []
        for i, op in enumerate(ops):
            if op == "enq":
                model.append(i)
            else:
                expect.append(model.popleft() if model else None)

        def body(ctx):
            for i, op in enumerate(ops):
                if op == "enq":
                    yield from q.enqueue(ctx, i)
                else:
                    got.append((yield from q.dequeue(ctx)))

        m.add_thread(body)
        m.run()
        assert got == expect
        assert q.drain_direct() == list(model)


class TestConcurrent:
    @pytest.mark.parametrize("leases,variant", [
        (False, "single"), (True, "single"), (True, "multi"),
    ])
    def test_conservation_and_no_duplication(self, leases, variant):
        m = make_machine(4, leases=leases)
        q = MichaelScottQueue(m, variant=variant)
        dequeued = []

        def worker(ctx, tid):
            got = []
            for i in range(10):
                yield from q.enqueue(ctx, (tid, i))
            for _ in range(5):
                v = yield from q.dequeue(ctx)
                if v is not None:
                    got.append(v)
            dequeued.extend(got)

        for tid in range(4):
            m.add_thread(worker, tid)
        m.run()
        m.check_coherence_invariants()
        everything = dequeued + q.drain_direct()
        assert len(everything) == 40
        assert len(set(everything)) == 40

    @pytest.mark.parametrize("leases", [False, True])
    def test_per_producer_fifo(self, leases):
        """Elements of one producer are dequeued in their enqueue order
        (a linearizability consequence for MS queues)."""
        m = make_machine(4, leases=leases)
        q = MichaelScottQueue(m)
        consumed = []

        def producer(ctx, tid):
            for i in range(12):
                yield from q.enqueue(ctx, (tid, i))

        def consumer(ctx):
            got = 0
            while got < 12:
                v = yield from q.dequeue(ctx)
                if v is not None:
                    consumed.append(v)
                    got += 1

        m.add_thread(producer, 0)
        m.add_thread(producer, 1)
        m.add_thread(consumer)
        m.add_thread(consumer)
        m.run()
        for tid in (0, 1):
            seq = [i for (t, i) in consumed + q.drain_direct() if t == tid]
            assert seq == sorted(seq)

    def test_lease_eliminates_cas_failures_on_sentinels(self):
        m = make_machine(8, leases=True)
        q = MichaelScottQueue(m)
        q.prefill(range(50))
        for _ in range(8):
            m.add_thread(q.update_worker, 20)
        m.run()
        # Retried operations are rare: dequeues/enqueues succeed first try.
        assert m.counters.cas_failures <= m.counters.cas_attempts * 0.05

    def test_multilease_variant_correct_under_contention(self):
        m = make_machine(8, leases=True)
        q = MichaelScottQueue(m, variant="multi")
        q.prefill(range(10))

        def worker(ctx, tid):
            for i in range(10):
                yield from q.enqueue(ctx, (tid, i))

        for tid in range(8):
            m.add_thread(worker, tid)
        m.run()
        m.check_coherence_invariants()
        assert len(q.drain_direct()) == 90
