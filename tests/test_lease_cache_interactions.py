"""Interactions between leases and the cache hierarchy: pinning under
capacity pressure, leases surviving evictions, lease traffic accounting."""

from conftest import make_machine

from repro import CAS, Lease, Load, Release, Store, Work
from repro.coherence.states import LineState


def same_set_addrs(m, count):
    """Addresses that all map to the same L1 set."""
    stride = m.config.l1_num_sets * m.config.line_size
    return [m.alloc.alloc(8, align=stride) for _ in range(count)]


def test_leased_line_survives_capacity_pressure():
    """Filling the leased line's set must evict other lines, never the
    leased one (the hardware pins it in the load buffer)."""
    m = make_machine(1)
    addrs = same_set_addrs(m, m.config.l1_assoc + 3)
    leased = addrs[0]
    out = {}

    def body(ctx):
        yield Lease(leased, 1 << 40)
        yield Store(leased, "precious")
        for a in addrs[1:]:
            yield Store(a, 1)
        l1 = m.cores[0].memunit.l1
        out["state"] = l1.state_of(m.amap.line_of(leased))
        vol = yield Release(leased)
        out["vol"] = vol

    m.add_thread(body)
    m.run()
    m.check_coherence_invariants()
    assert out["state"] == LineState.M
    assert out["vol"] is True
    assert m.counters.l1_evictions >= 2


def test_all_ways_leased_overfills_set():
    """Leasing every way of one set forces the over-fill path (the load
    buffer holds the extras) without dropping any lease."""
    m = make_machine(1, max_num_leases=8)
    addrs = same_set_addrs(m, m.config.l1_assoc + 1)
    out = {}

    def body(ctx):
        for a in addrs[:m.config.l1_assoc]:
            yield Lease(a, 1 << 40)
        yield Store(addrs[-1], 1)          # set is full of pinned lines
        vols = []
        for a in addrs[:m.config.l1_assoc]:
            vols.append((yield Release(a)))
        out["vols"] = vols

    m.add_thread(body)
    m.run()
    assert out["vols"] == [True] * m.config.l1_assoc
    assert m.counters.l1_eviction_overflows >= 1


def test_release_unpins_line():
    m = make_machine(1)
    addr = m.alloc_var(0)

    def body(ctx):
        yield Lease(addr, 10_000)
        yield Release(addr)
        yield Work(1)

    m.add_thread(body)
    m.run()
    assert not m.cores[0].memunit.l1.is_pinned(m.amap.line_of(addr))


def test_expiry_unpins_line():
    m = make_machine(1)
    addr = m.alloc_var(0)

    def body(ctx):
        yield Lease(addr, 50)
        yield Work(500)

    m.add_thread(body)
    m.run()
    assert not m.cores[0].memunit.l1.is_pinned(m.amap.line_of(addr))


def test_lease_on_owned_line_generates_no_traffic():
    m = make_machine(2)
    addr = m.alloc_var(0)
    out = {}

    def body(ctx):
        yield Store(addr, 1)               # line now M
        before = m.counters.messages
        yield Lease(addr, 10_000)
        out["delta"] = m.counters.messages - before
        yield Release(addr)

    m.add_thread(body)
    m.run()
    assert out["delta"] == 0


def test_lease_miss_counts_one_transaction():
    m = make_machine(2)
    addr = m.alloc_var(0)

    def body(ctx):
        yield Lease(addr, 10_000)
        v = yield Load(addr)               # hit under the lease
        ok = yield CAS(addr, v, v + 1)     # hit under the lease
        yield Release(addr)

    m.add_thread(body)
    m.run()
    assert m.counters.l1_misses == 1       # only the lease's GetX
    assert m.counters.l1_hits == 2
    assert m.counters.getx_requests == 1


def test_contended_line_stays_cached_between_lease_ops():
    """The Figure 1 measurement: misses per op stay constant because the
    hot line is acquired exactly once per operation."""
    m = make_machine(8)
    addr = m.alloc_var(0)

    def body(ctx):
        for _ in range(10):
            yield Lease(addr, 10_000)
            v = yield Load(addr)
            yield CAS(addr, v, v + 1)
            yield Release(addr)
            yield Work(20)

    for _ in range(8):
        m.add_thread(body)
    m.run()
    assert m.peek(addr) == 80
    # Exactly one coherence acquisition per op (+/- the first cold ones).
    assert m.counters.l1_misses <= 80 + 8
