"""MESI protocol support (Section 8 "Other Protocols").

Under MESI, a read miss to an uncached line is granted exclusive-clean (E);
the first write upgrades E->M silently (no traffic); clean lines never
write back.  Leases demand exclusive state and are satisfied by E.
"""

import pytest

from repro import (CAS, Lease, Load, Machine, MachineConfig, LeaseConfig,
                   Release, Store, Work)
from repro.coherence.states import DirState, LineState


def mesi_machine(num_cores=2, *, leases=True, **kw) -> Machine:
    return Machine(MachineConfig(num_cores=num_cores, protocol="mesi",
                                 lease=LeaseConfig(enabled=leases), **kw))


def test_read_miss_grants_exclusive_clean():
    m = mesi_machine()
    addr = m.alloc_var(7)

    def reader(ctx):
        v = yield Load(addr)
        assert v == 7

    m.add_thread(reader)
    m.run()
    line = m.amap.line_of(addr)
    assert m.cores[0].memunit.l1.state_of(line) == LineState.E
    assert m.directory.state_of(line) == DirState.MODIFIED
    assert m.directory.owner_of(line) == 0
    m.check_coherence_invariants()


def test_msi_read_miss_grants_shared():
    m = Machine(MachineConfig(num_cores=2, protocol="msi"))
    addr = m.alloc_var(7)

    def reader(ctx):
        yield Load(addr)

    m.add_thread(reader)
    m.run()
    assert m.cores[0].memunit.l1.state_of(m.amap.line_of(addr)) == \
        LineState.S


def test_silent_upgrade_on_write():
    m = mesi_machine()
    addr = m.alloc_var(0)

    def rw(ctx):
        yield Load(addr)       # E
        yield Store(addr, 1)   # silent E->M, no traffic

    m.add_thread(rw)
    m.run()
    line = m.amap.line_of(addr)
    assert m.cores[0].memunit.l1.state_of(line) == LineState.M
    assert m.counters.mesi_silent_upgrades == 1
    # Exactly one coherence transaction happened (the read miss).
    assert m.counters.getx_requests == 0
    m.check_coherence_invariants()


def test_msi_same_pattern_pays_upgrade():
    m = Machine(MachineConfig(num_cores=2, protocol="msi"))
    addr = m.alloc_var(0)

    def rw(ctx):
        yield Load(addr)
        yield Store(addr, 1)

    m.add_thread(rw)
    m.run()
    assert m.counters.getx_requests == 1
    assert m.counters.mesi_silent_upgrades == 0


def test_second_reader_downgrades_e_without_writeback():
    m = mesi_machine()
    addr = m.alloc_var(5)

    def t0(ctx):
        yield Load(addr)       # E, never written

    def t1(ctx):
        yield Work(200)
        v = yield Load(addr)
        assert v == 5

    m.add_thread(t0)
    m.add_thread(t1)
    m.run()
    line = m.amap.line_of(addr)
    assert m.directory.state_of(line) == DirState.SHARED
    assert m.counters.writebacks == 0      # E was clean
    m.check_coherence_invariants()


def test_dirty_owner_still_writes_back():
    m = mesi_machine()
    addr = m.alloc_var(0)

    def t0(ctx):
        yield Store(addr, 9)   # E->... store miss goes straight to M

    def t1(ctx):
        yield Work(200)
        v = yield Load(addr)
        assert v == 9

    m.add_thread(t0)
    m.add_thread(t1)
    m.run()
    assert m.counters.writebacks >= 1
    m.check_coherence_invariants()


def test_lease_satisfied_by_e_state():
    """A line already held in E can be leased with zero extra traffic."""
    m = mesi_machine()
    addr = m.alloc_var(0)

    def t0(ctx):
        yield Load(addr)                   # E
        before = ctx.machine.counters.messages
        yield Lease(addr, 10_000)
        after = ctx.machine.counters.messages
        assert after == before             # no new traffic
        ok = yield CAS(addr, 0, 1)
        assert ok
        yield Release(addr)

    m.add_thread(t0)
    m.run()
    assert m.peek(addr) == 1


def test_clean_eviction_of_e_line_is_puts():
    m = mesi_machine(1)
    cfg = m.config
    stride = cfg.l1_num_sets * cfg.line_size
    addrs = [m.alloc.alloc(8, align=stride)
             for _ in range(cfg.l1_assoc + 1)]

    def worker(ctx):
        for a in addrs:
            yield Load(a)      # all granted E; one gets evicted clean

    m.add_thread(worker)
    m.run()
    assert m.counters.l1_evictions == 1
    assert m.counters.writebacks == 0
    m.check_coherence_invariants()


@pytest.mark.parametrize("protocol", ["msi", "mesi"])
def test_contended_stack_correct_under_both_protocols(protocol):
    from repro.structures import TreiberStack
    m = Machine(MachineConfig(num_cores=8, protocol=protocol))
    stack = TreiberStack(m)
    stack.prefill(range(32))
    for _ in range(8):
        m.add_thread(stack.update_worker, 15)
    m.run()
    m.check_coherence_invariants()
    assert m.counters.cas_failures == 0    # leases on by default


def test_mesi_helps_private_data_pattern():
    """Read-then-write over private lines is cheaper under MESI (the
    classic E-state benefit)."""
    def run(protocol):
        m = Machine(MachineConfig(num_cores=1, protocol=protocol))
        addrs = [m.alloc_var(0) for _ in range(20)]

        def worker(ctx):
            for a in addrs:
                v = yield Load(a)
                yield Store(a, v + 1)

        m.add_thread(worker)
        return m.run()

    assert run("mesi") < run("msi")
