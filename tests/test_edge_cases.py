"""Edge cases across the workload layer: empty structures, sentinel
boundaries, degenerate configurations."""

import pytest

from conftest import make_machine

from repro import Load, Work
from repro.structures import (HarrisList, LockFreeSkipList,
                              LockedExternalBST, LockedHashTable,
                              MichaelScottQueue, MultiQueue, TreiberStack)
from repro.structures.multiqueue import SequentialBinaryHeap


def run_one(m, body):
    out = []

    def wrapper(ctx):
        out.append((yield from body(ctx)))

    m.add_thread(wrapper)
    m.run()
    return out[0]


class TestEmptyStructures:
    def test_empty_stack_pops_none_repeatedly(self, machine1):
        s = TreiberStack(machine1)

        def body(ctx):
            a = yield from s.pop(ctx)
            b = yield from s.pop(ctx)
            return (a, b)

        assert run_one(machine1, body) == (None, None)

    def test_empty_queue(self, machine1):
        q = MichaelScottQueue(machine1)

        def body(ctx):
            return (yield from q.dequeue(ctx))

        assert run_one(machine1, body) is None
        assert q.drain_direct() == []

    def test_empty_multiqueue_delete_min(self):
        m = make_machine(2)
        mq = MultiQueue(m, num_queues=2)

        def body(ctx):
            return (yield from mq.delete_min(ctx))

        assert run_one(m, body) is None

    def test_empty_search_structures(self, machine1):
        for cls in (HarrisList, LockFreeSkipList, LockedHashTable,
                    LockedExternalBST):
            m = make_machine(1)
            s = cls(m)

            def body(ctx, s=s):
                a = yield from s.contains(ctx, 5)
                b = yield from s.delete(ctx, 5)
                return (a, b)

            assert run_one(m, body) == (False, False)
            assert s.keys_direct() == []


class TestBoundaries:
    def test_list_extreme_keys(self, machine1):
        """Keys at the ends never collide with the +/-inf sentinels."""
        s = HarrisList(machine1)

        def body(ctx):
            yield from s.insert(ctx, -10**9)
            yield from s.insert(ctx, 10**9)
            a = yield from s.contains(ctx, -10**9)
            b = yield from s.contains(ctx, 10**9)
            return (a, b)

        assert run_one(machine1, body) == (True, True)
        assert s.keys_direct() == [-10**9, 10**9]

    def test_skiplist_single_element_churn(self, machine1):
        s = LockFreeSkipList(machine1)

        def body(ctx):
            for _ in range(5):
                assert (yield from s.insert(ctx, 1))
                assert (yield from s.delete(ctx, 1))
            return True

        assert run_one(machine1, body)
        assert s.keys_direct() == []

    def test_bst_reinsert_after_delete(self, machine1):
        s = LockedExternalBST(machine1)

        def body(ctx):
            yield from s.insert(ctx, 5)
            yield from s.insert(ctx, 3)
            yield from s.delete(ctx, 5)
            ok = yield from s.insert(ctx, 5)
            return ok

        assert run_one(machine1, body)
        assert s.keys_direct() == [3, 5]

    def test_heap_duplicate_keys(self, machine1):
        h = SequentialBinaryHeap(machine1, capacity=16)

        def body(ctx):
            for k in (2, 2, 1, 2, 1):
                yield from h.insert(ctx, k)
            out = []
            for _ in range(5):
                out.append((yield from h.delete_min(ctx)))
            return out

        assert run_one(machine1, body) == [1, 1, 2, 2, 2]


class TestDegenerateConfigs:
    def test_single_core_machine_runs_everything(self):
        m = make_machine(1)
        s = TreiberStack(m)
        m.add_thread(s.update_worker, 10)
        m.run()
        assert m.counters.ops_completed == 10

    def test_max_num_leases_one(self):
        """MAX_NUM_LEASES=1: every new lease evicts the previous one."""
        m = make_machine(1, max_num_leases=1)
        a, b = m.alloc_var(0), m.alloc_var(0)
        from repro import Lease, Release

        def body(ctx):
            yield Lease(a, 10_000)
            yield Lease(b, 10_000)
            va = yield Release(a)      # already auto-released
            vb = yield Release(b)
            return (va, vb)

        out = []

        def wrapper(ctx):
            out.append((yield from body(ctx)))

        m.add_thread(wrapper)
        m.run()
        assert out[0] == (False, True)
        assert m.counters.releases_fifo_eviction == 1

    def test_two_core_mesh(self):
        """Smallest multi-tile machine: home tiles alternate."""
        m = make_machine(2)
        lines = [m.amap.home_tile(i) for i in range(4)]
        assert lines == [0, 1, 0, 1]

    def test_queue_with_zero_prefill_concurrent(self):
        m = make_machine(4, prioritize_regular_requests=False)
        q = MichaelScottQueue(m)
        got = []

        def producer(ctx):
            for i in range(5):
                yield from q.enqueue(ctx, i)
                yield Work(30)

        def consumer(ctx):
            n = 0
            while n < 5:
                v = yield from q.dequeue(ctx)
                if v is not None:
                    got.append(v)
                    n += 1
                yield Work(10)

        m.add_thread(producer)
        m.add_thread(producer)
        m.add_thread(consumer)
        m.add_thread(consumer)
        m.run()
        m.check_coherence_invariants()
        assert sorted(got) == sorted([0, 1, 2, 3, 4] * 2)
