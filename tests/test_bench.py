"""The repro.bench subsystem: records, baselines, the regression gate,
and the ``python -m repro bench`` command."""

import json

import pytest

from repro import bench
from repro.__main__ import main

#: Cheapest real target; every end-to-end test uses it to stay fast.
FAST = "event_queue"

RECORD_KEYS = {
    "bench_format", "name", "title", "quick", "repeats", "wall_seconds",
    "ops", "ops_per_sec", "events", "events_per_sec", "peak_heap_bytes",
    "calibration_ops_per_sec", "score", "fault_spec", "seed", "engine",
    "extra", "machine",
}


@pytest.fixture(scope="module")
def record():
    return bench.run_target(FAST, quick=True, repeats=1)


def test_record_schema(record):
    assert set(record) == RECORD_KEYS
    assert record["bench_format"] == bench.BENCH_FORMAT
    assert record["name"] == FAST and record["quick"] is True
    assert record["wall_seconds"] > 0
    assert record["ops"] > 0 and record["ops_per_sec"] > 0
    assert record["events"] > 0 and record["events_per_sec"] > 0
    assert record["peak_heap_bytes"] > 0
    assert record["score"] > 0
    assert record["machine"]["id"]
    json.dumps(record)               # must be JSON-serializable as-is


def test_all_targets_registered():
    assert set(bench.TARGETS) == {
        "event_queue", "coherence_storm", "treiber", "counter",
        "sweep_cell", "sync_ablation", "trace_fastpath",
        "fault_degradation", "snapshot_roundtrip", "engine_fastpath",
        "cluster_scale", "tail_latency", "link_saturation"}
    assert bench.default_target_names() == list(bench.TARGETS)


def test_unknown_target_raises():
    with pytest.raises(KeyError):
        bench.run_target("nope", quick=True)


def test_write_results_one_file_per_target(record, tmp_path):
    paths = bench.write_results({FAST: record}, str(tmp_path))
    assert paths == [str(tmp_path / f"BENCH_{FAST}.json")]
    with open(paths[0]) as f:
        assert json.load(f) == record


def test_baseline_roundtrip(record, tmp_path):
    path = tmp_path / "base.json"
    bench.write_baseline({FAST: record}, str(path))
    doc = bench.load_baseline(str(path))
    assert doc["bench_format"] == bench.BENCH_FORMAT
    assert doc["targets"][FAST] == record
    assert doc["machine"]["id"]


def test_load_baseline_rejects_wrong_format(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"bench_format": 999, "targets": {}}\n')
    with pytest.raises(ValueError, match="bench_format"):
        bench.load_baseline(str(path))


def _fake(name, score):
    return {"name": name, "score": score}


def test_diff_flags_only_drops_beyond_tolerance():
    baseline = {"targets": {"a": _fake("a", 1.0), "b": _fake("b", 1.0),
                            "c": _fake("c", 1.0)}}
    results = {"a": _fake("a", 0.9),       # -10%: fine
               "b": _fake("b", 0.65),      # -35%: regressed at 30%
               "c": _fake("c", 1.4),       # faster: fine
               "new": _fake("new", 0.1)}   # not in baseline: skipped
    rows = bench.diff_results(results, baseline, tolerance=0.30)
    assert {r["name"] for r in rows} == {"a", "b", "c"}
    by_name = {r["name"]: r for r in rows}
    assert not by_name["a"]["regressed"]
    assert by_name["b"]["regressed"]
    assert not by_name["c"]["regressed"]
    assert by_name["c"]["delta_pct"] == 40.0


def test_diff_exact_tolerance_boundary_passes():
    baseline = {"targets": {"a": _fake("a", 1.0)}}
    rows = bench.diff_results({"a": _fake("a", 0.7)}, baseline,
                              tolerance=0.30)
    assert not rows[0]["regressed"]   # exactly -30% is still allowed


def test_calibration_is_cached_and_positive():
    assert bench.calibration_ops_per_sec() > 0
    assert (bench.calibration_ops_per_sec()
            == bench.calibration_ops_per_sec())


def test_machine_fingerprint_is_stable():
    a, b = bench.machine_fingerprint(), bench.machine_fingerprint()
    assert a == b and len(a["id"]) == 12


# -- the CLI -----------------------------------------------------------------

def test_cli_bench_writes_records_and_gates(tmp_path, capsys):
    base = tmp_path / "baseline.json"
    rc = main(["bench", FAST, "--quick", "--repeats", "3",
               "--out-dir", str(tmp_path / "out"),
               "--write-baseline", str(base)])
    assert rc == 0
    assert (tmp_path / "out" / f"BENCH_{FAST}.json").exists()
    assert base.exists()
    capsys.readouterr()
    # Same machine, immediately after: must pass the gate.  Best-of-3
    # timing plus a wide tolerance keeps this robust to suite-load noise;
    # the tight-gate path is covered by test_cli_bench_fails_on_regression.
    rc = main(["bench", FAST, "--quick", "--repeats", "3",
               "--out-dir", str(tmp_path / "out2"),
               "--baseline", str(base), "--tolerance", "0.6"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "vs baseline" in out and "REGRESSED" not in out


def test_cli_bench_fails_on_regression(tmp_path, capsys):
    record = bench.run_target(FAST, quick=True, repeats=1)
    inflated = {**record, "score": record["score"] * 100}
    base = tmp_path / "baseline.json"
    bench.write_baseline({FAST: inflated}, str(base))
    rc = main(["bench", FAST, "--quick", "--repeats", "1",
               "--out-dir", str(tmp_path), "--baseline", str(base)])
    assert rc == 1
    captured = capsys.readouterr()
    assert "REGRESSED" in captured.out
    assert "perf regression" in captured.err


def test_cli_bench_unknown_target(capsys):
    assert main(["bench", "warp_drive"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("bench: unknown target")
    assert err.count("\n") == 1


def test_cli_bench_missing_baseline(tmp_path, capsys):
    assert main(["bench", FAST, "--baseline",
                 str(tmp_path / "absent.json")]) == 2
    assert capsys.readouterr().err.startswith("--baseline:")


@pytest.mark.parametrize("args", [["--jobs", "0"], ["--jobs", "x"],
                                  ["--repeats", "0"],
                                  ["--tolerance", "0"],
                                  ["--tolerance", "1.5"]])
def test_cli_bench_rejects_bad_numbers(args, capsys):
    assert main(["bench", FAST, "--quick"] + args) == 2
    err = capsys.readouterr().err
    assert err.startswith("--")
    assert err.count("\n") == 1


def test_committed_baseline_is_loadable():
    # The baseline the CI gate diffs against must always parse and cover
    # every registered target.
    import pathlib
    path = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" \
        / "baseline.json"
    doc = bench.load_baseline(str(path))
    assert set(doc["targets"]) == set(bench.TARGETS)


# -- fault injection in bench -------------------------------------------------

def test_fault_degradation_target_reports_relative_curve():
    rec = bench.run_target("fault_degradation", quick=True, repeats=1)
    extra = rec["extra"]
    assert extra["none_relative"] == 1.0
    assert extra["none_faults"] == 0
    # Harsher rungs inject real faults and lose real throughput.
    assert extra["hostile_faults"] > extra["mild_faults"]
    assert extra["hostile_relative"] < 1.0


def test_fault_spec_threads_into_machine_targets():
    clean = bench.run_target("treiber", quick=True, repeats=1)
    faulty = bench.run_target("treiber", quick=True, repeats=1,
                              fault_spec="dir_nack:p=0.1")
    assert clean["fault_spec"] == ""
    assert faulty["fault_spec"] == "dir_nack:p=0.1"
    # Simulated cycle counts differ once NACKs delay directory requests.
    assert faulty["extra"]["cycles"] != clean["extra"]["cycles"]


def test_cli_bench_accepts_faults(tmp_path, capsys):
    rc = main(["bench", FAST, "--quick", "--repeats", "1",
               "--faults", "timer_skew:4",
               "--out-dir", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "faults='timer_skew:4'" in out
    rec = json.loads((tmp_path / f"BENCH_{FAST}.json").read_text())
    assert rec["fault_spec"] == "timer_skew:4"
