"""Property-based stress tests: random workloads must always terminate,
preserve per-line sequential consistency for atomics, and leave the
directory and L1 tags in agreement."""

from hypothesis import given, settings, strategies as st

from conftest import make_machine

from repro import CAS, FetchAdd, Lease, Load, MultiLease, Release, \
    ReleaseAll, Store, Work


op_strategy = st.sampled_from(["load", "store", "cas", "faa", "lease",
                               "release", "work"])


@given(
    num_threads=st.integers(2, 6),
    num_vars=st.integers(1, 4),
    script=st.lists(st.tuples(op_strategy, st.integers(0, 3),
                              st.integers(1, 50)),
                    min_size=1, max_size=40),
    leases=st.booleans(),
    prio=st.booleans(),
    seed=st.integers(0, 5),
)
@settings(max_examples=40, deadline=None)
def test_random_workloads_terminate_consistently(num_threads, num_vars,
                                                 script, leases, prio, seed):
    m = make_machine(num_threads, leases=leases, seed=seed,
                     prioritize_regular_requests=prio, max_lease_time=500)
    addrs = [m.alloc_var(0) for _ in range(num_vars)]

    def body(ctx):
        for op, var, arg in script:
            a = addrs[var % num_vars]
            if op == "load":
                yield Load(a)
            elif op == "store":
                yield Store(a, arg)
            elif op == "cas":
                v = yield Load(a)
                yield CAS(a, v, arg)
            elif op == "faa":
                yield FetchAdd(a, 1)
            elif op == "lease":
                yield Lease(a, arg * 10)
            elif op == "release":
                yield Release(a)
            else:
                yield Work(arg)
        yield ReleaseAll()

    for _ in range(num_threads):
        m.add_thread(body)
    m.run()
    m.check_coherence_invariants()
    # FetchAdds are atomic: total increments must be exact.
    faa_count = sum(1 for op, _, _ in script if op == "faa")
    if all(op not in ("store", "cas") for op, _, _ in script):
        total = sum(m.peek(a) for a in addrs)
        assert total == faa_count * num_threads


@given(
    num_threads=st.integers(2, 5),
    groups=st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)),
                    min_size=1, max_size=10),
    mode=st.sampled_from(["hardware", "software"]),
    seed=st.integers(0, 3),
)
@settings(max_examples=25, deadline=None)
def test_random_multilease_patterns_never_deadlock(num_threads, groups,
                                                   mode, seed):
    """Proposition 3 under random group shapes: the run always completes
    and jointly-leased increments are never lost."""
    m = make_machine(num_threads, leases=True, seed=seed,
                     multilease_mode=mode,
                     prioritize_regular_requests=False)
    addrs = [m.alloc_var(0) for _ in range(5)]

    def body(ctx):
        for x, y in groups:
            pair = (addrs[x], addrs[y])
            yield MultiLease(pair, 20_000)
            vx = yield Load(addrs[x])
            yield Store(addrs[x], vx + 1)
            yield ReleaseAll()

    for _ in range(num_threads):
        m.add_thread(body)
    m.run()
    m.check_coherence_invariants()
    assert sum(m.peek(a) for a in addrs) == num_threads * len(groups)


@given(seed=st.integers(0, 20))
@settings(max_examples=20, deadline=None)
def test_lease_never_changes_results_only_timing(seed):
    """For a deterministic workload, leases must not change computed
    values -- only cycle counts and traffic."""
    outcomes = []
    for leases in (False, True):
        m = make_machine(4, leases=leases, seed=seed)
        addr = m.alloc_var(0)

        def body(ctx):
            for _ in range(15):
                while True:
                    yield Lease(addr, 20_000)
                    v = yield Load(addr)
                    ok = yield CAS(addr, v, v + 1)
                    yield Release(addr)
                    if ok:
                        break

        for _ in range(4):
            m.add_thread(body)
        m.run()
        outcomes.append(m.peek(addr))
    assert outcomes[0] == outcomes[1] == 60
