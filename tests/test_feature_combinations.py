"""Cross-feature combinations: MESI x MultiLease, MESI x predictor,
software MultiLease x prioritization -- the corners a downstream user
will eventually hit."""

import pytest

from repro import (CAS, Lease, LeaseConfig, Load, Machine, MachineConfig,
                   MultiLease, Release, ReleaseAll, Store, Work)


def machine(protocol="msi", **lease_kw) -> Machine:
    lease_kw.setdefault("enabled", True)
    return Machine(MachineConfig(num_cores=4, protocol=protocol,
                                 lease=LeaseConfig(**lease_kw)))


@pytest.mark.parametrize("protocol", ["msi", "mesi"])
@pytest.mark.parametrize("mode", ["hardware", "software"])
def test_multilease_atomicity_all_combos(protocol, mode):
    m = machine(protocol, multilease_mode=mode,
                prioritize_regular_requests=False)
    words = [m.alloc_var(0) for _ in range(3)]

    def worker(ctx):
        for _ in range(8):
            x, y = ctx.rng.sample(range(3), 2)
            yield MultiLease((words[x], words[y]), 20_000)
            vx = yield Load(words[x])
            vy = yield Load(words[y])
            yield Store(words[x], vx + 1)
            yield Store(words[y], vy + 1)
            yield ReleaseAll()

    for _ in range(4):
        m.add_thread(worker)
    m.run()
    m.check_coherence_invariants()
    assert sum(m.peek(w) for w in words) == 4 * 8 * 2


def test_mesi_lease_on_e_line_queues_probes():
    """A lease taken over an E line (zero traffic) still delays rivals."""
    m = machine("mesi", prioritize_regular_requests=False)
    addr = m.alloc_var(0)
    times = {}

    def holder(ctx):
        yield Load(addr)            # E
        yield Lease(addr, 10_000)   # free
        yield Work(400)
        yield Release(addr)

    def rival(ctx):
        yield Work(100)
        yield Store(addr, 1)
        times["store"] = ctx.machine.now

    m.add_thread(holder)
    m.add_thread(rival)
    m.run()
    assert times["store"] > 400


def test_predictor_under_mesi():
    m = machine("mesi", predictor_enabled=True, predictor_min_samples=3)
    addr = m.alloc_var(0)

    def hog(ctx):
        for _ in range(12):
            yield Lease(addr, 80, site="hog")
            yield Work(400)

    m.add_thread(hog)
    m.run()
    assert m.counters.leases_ignored_by_predictor > 0


def test_software_multilease_with_prioritization():
    """Prioritized regular stores break software-emulated group leases
    without corrupting the group bookkeeping."""
    m = machine(multilease_mode="software",
                prioritize_regular_requests=True)
    a, b = m.alloc_var(0), m.alloc_var(0)

    def holder(ctx):
        for _ in range(5):
            yield MultiLease((a, b), 20_000)
            va = yield Load(a)
            yield Work(300)         # long leased window
            yield Store(a, va + 1)
            yield ReleaseAll()
            yield Work(50)

    def breaker(ctx):
        for i in range(5):
            yield Work(150)
            yield Store(b, i)       # regular: breaks any lease on b

    m.add_thread(holder)
    m.add_thread(breaker)
    m.run()
    m.check_coherence_invariants()
    assert m.peek(a) == 5
    assert m.counters.releases_broken_by_priority > 0


def test_lease_cas_pattern_under_mesi_contended():
    m = machine("mesi")
    addr = m.alloc_var(0)

    def worker(ctx):
        for _ in range(15):
            yield Lease(addr, 20_000)
            v = yield Load(addr)
            ok = yield CAS(addr, v, v + 1)
            yield Release(addr)
            assert ok

    for _ in range(4):
        m.add_thread(worker)
    m.run()
    m.check_coherence_invariants()
    assert m.peek(addr) == 60
    assert m.counters.cas_failures == 0
