"""Open-loop traffic: spec grammar, lanes, shed accounting, SLO gate.

Ends with the identity checks the tentpole promises: the latency
histogram of an open-loop run is bit-identical on the fast and compat
engines and across a mid-run checkpoint/restore cut, and the CLI turns
an SLO miss into exit code 1 (a bad spec into exit code 2).
"""

import json

import pytest

from repro.__main__ import main
from repro.config import MachineConfig
from repro.core.machine import Machine
from repro.errors import ConfigError
from repro.stats.latency import LatencyHistogram
from repro.structures import LockedCounter
from repro.traffic import (TrafficSource, evaluate_slo, op_for_key,
                           parse_traffic_spec, traffic_counter_worker)
from repro.traffic.spec import DEFAULT_HOTSET_SHIFT, DEFAULT_QUEUE_DEPTH
from repro.workloads.driver import bench_counter


# ---------------------------------------------------------------------------
# Spec grammar
# ---------------------------------------------------------------------------

class TestSpecParse:
    def test_empty_spec_is_empty(self):
        spec = parse_traffic_spec("")
        assert spec.empty and not spec.has_slo

    def test_roadmap_one_liner(self):
        spec = parse_traffic_spec("poisson:rate=2.0,zipf:s=1.2,tenants=2")
        assert spec.arrival == "poisson" and spec.rate == 2.0
        assert spec.keys == "zipf" and spec.zipf_s == 1.2
        assert spec.tenants == 2
        assert spec.queue_depth == DEFAULT_QUEUE_DEPTH

    def test_burst_with_semicolons_and_slo(self):
        spec = parse_traffic_spec(
            "burst:rate=4,on=3000,off=9000;"
            "hotset:frac=0.9,size=8,shift=64;queue=8;slo:p99=2500,shed=0.01")
        assert spec.arrival == "burst"
        assert (spec.on_cycles, spec.off_cycles) == (3000, 9000)
        assert spec.keys == "hotset"
        assert (spec.hot_frac, spec.hot_size, spec.hot_shift) == (0.9, 8, 64)
        assert spec.queue_depth == 8
        assert spec.has_slo
        assert (spec.slo_p99, spec.slo_p999, spec.slo_shed) == (2500, None,
                                                                0.01)

    def test_ramp_and_ops(self):
        spec = parse_traffic_spec("ramp:rate=1.5,period=400,ops=32")
        assert spec.arrival == "ramp" and spec.period == 400
        assert spec.ops == 32

    def test_hotset_shift_defaults(self):
        spec = parse_traffic_spec("poisson:rate=1,hotset:frac=0.5,size=4")
        assert spec.hot_shift == DEFAULT_HOTSET_SHIFT

    @pytest.mark.parametrize("bad, msg", [
        ("bogus:rate=1", "unknown clause"),
        ("poisson:rate=1,poisson:rate=2", "duplicate clause"),
        ("poisson:rate=1,burst:rate=2,on=10,off=10", "second arrival"),
        ("poisson:rate=1,zipf:s=1,uniform", "second key clause"),
        ("poisson", "needs rate"),
        ("poisson:rate=0", "must be > 0"),
        ("poisson:rate=abc", "must be a float"),
        ("burst:rate=1,on=10", "needs rate"),
        ("ramp:rate=1", "needs rate"),
        ("zipf:s=1.2", "needs an arrival clause"),
        ("poisson:rate=1,zipf", "needs s="),
        ("poisson:rate=1,zipf:s=-1", "must be >= 0"),
        ("poisson:rate=1,hotset:frac=0.5", "needs frac"),
        ("poisson:rate=1,hotset:frac=2,size=4", "frac"),
        ("poisson:rate=1,slo", "needs at least one"),
        ("poisson:rate=1,slo:p99=0", "p99"),
        ("poisson:rate=1,tenants=0", "tenants"),
        ("poisson:rate=1,queue=x", "queue"),
        ("poisson:rate=1,rate=9", "duplicate"),
        ("poisson:rate=1,frob=2", "unknown parameter"),
    ])
    def test_rejects(self, bad, msg):
        with pytest.raises(ConfigError, match="traffic spec:") as exc:
            parse_traffic_spec(bad)
        assert msg in str(exc.value)


# ---------------------------------------------------------------------------
# Lanes: determinism and shed accounting (driven with a stub machine)
# ---------------------------------------------------------------------------

class _StubTrace:
    def __init__(self):
        self.admitted = 0
        self.shed = 0

    def op_admitted(self, core_id, tenant, depth):
        self.admitted += 1

    def op_shed(self, core_id, tenant):
        self.shed += 1


class _StubCtx:
    def __init__(self, now=0):
        self.machine = type("M", (), {})()
        self.machine.now = now
        self.machine.trace = _StubTrace()
        self.core_id = 0


def _drain(lane, ctx, step=50):
    """Pull a lane dry, advancing the stub clock on wait hints."""
    items = []
    while True:
        got = lane.poll(ctx)
        if got is None:
            return items
        if isinstance(got, int):
            ctx.machine.now += got
            continue
        items.append(got)
        lane.complete(got[0], ctx.machine.now)


class TestLanes:
    SPEC = "poisson:rate=2.0,zipf:s=1.1,tenants=2,ops=12"

    def _source(self, seed=3, spec=None):
        return TrafficSource(spec or self.SPEC, num_lanes=2, seed=seed,
                             key_range=16, default_ops=8)

    def test_fixed_seed_is_deterministic(self):
        a = [_drain(self._source().lane(i), _StubCtx()) for i in (0, 1)]
        b = [_drain(self._source().lane(i), _StubCtx()) for i in (0, 1)]
        assert a == b
        # ...and the merged histograms match bucket-for-bucket.
        sa, sb = self._source(), self._source()
        for i in (0, 1):
            _drain(sa.lane(i), _StubCtx())
            _drain(sb.lane(i), _StubCtx())
        assert sa.histogram() == sb.histogram()

    def test_lanes_and_seeds_draw_distinct_streams(self):
        src = self._source()
        assert (_drain(src.lane(0), _StubCtx())
                != _drain(src.lane(1), _StubCtx()))
        assert (_drain(self._source(seed=3).lane(0), _StubCtx())
                != _drain(self._source(seed=4).lane(0), _StubCtx()))

    def test_arrivals_ordered_and_tagged(self):
        src = self._source()
        items = _drain(src.lane(0), _StubCtx())
        cycles = [t for t, _tenant, _key in items]
        assert cycles == sorted(cycles)
        assert {tenant for _t, tenant, _key in items} <= {0, 1}
        assert all(0 <= key < 16 for _t, _tenant, key in items)

    def test_offered_equals_admitted_plus_shed(self):
        src = TrafficSource("poisson:rate=4.0,queue=2,ops=10",
                            num_lanes=1, seed=5, key_range=8)
        ctx = _StubCtx(now=10 ** 9)      # everything due at once
        items = _drain(src.lane(0), ctx)
        assert src.admitted + src.shed == 10
        assert src.shed > 0
        assert len(items) == src.admitted == src.histogram().total
        # the trace saw exactly the same split
        assert ctx.machine.trace.admitted == src.admitted
        assert ctx.machine.trace.shed == src.shed

    def test_queue_never_exceeds_depth(self):
        src = TrafficSource("poisson:rate=4.0,queue=2,ops=10",
                            num_lanes=1, seed=5, key_range=8)
        lane = src.lane(0)
        lane.poll(_StubCtx(now=10 ** 9))
        assert len(lane.queue) <= 2

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            TrafficSource("", num_lanes=1, seed=1)

    def test_op_for_key_is_pure(self):
        assert op_for_key(3, 1, 50) == op_for_key(3, 1, 50)
        assert op_for_key(3, 1, 0) == "contains"
        assert op_for_key(3, 1, 100) in ("insert", "delete")


# ---------------------------------------------------------------------------
# SLO verdicts
# ---------------------------------------------------------------------------

class TestSlo:
    def _hist(self, *values):
        h = LatencyHistogram()
        for v in values:
            h.record(v)
        return h

    def test_no_slo_clause_is_na(self):
        spec = parse_traffic_spec("poisson:rate=1")
        assert evaluate_slo(spec, self._hist(10), 0.0) == "n/a"

    def test_pass_and_fail_on_p99(self):
        spec = parse_traffic_spec("poisson:rate=1,slo:p99=100")
        assert evaluate_slo(spec, self._hist(10, 20), 0.0) == "pass"
        assert evaluate_slo(spec, self._hist(10, 500), 0.0) == "fail"

    def test_shed_bound(self):
        spec = parse_traffic_spec("poisson:rate=1,slo:shed=0.1")
        assert evaluate_slo(spec, self._hist(10), 0.05) == "pass"
        assert evaluate_slo(spec, self._hist(10), 0.5) == "fail"

    def test_empty_histogram_fails_latency_bound(self):
        spec = parse_traffic_spec("poisson:rate=1,slo:p999=100")
        assert evaluate_slo(spec, LatencyHistogram(), 0.0) == "fail"


# ---------------------------------------------------------------------------
# End-to-end identity: engines, checkpoint/restore, CLI gate
# ---------------------------------------------------------------------------

SPEC = "poisson:rate=2.0,zipf:s=1.1,tenants=2,ops=8"


class TestEndToEnd:
    def _run(self, engine, use_lease=False):
        return bench_counter(2, use_lease=use_lease, traffic=SPEC,
                             config=MachineConfig(seed=7, engine=engine))

    def test_latency_payload_attached(self):
        r = self._run("fast")
        assert r.latency is not None
        assert r.ops == r.latency["admitted"] == r.latency["hist"]["total"]
        assert {"p50", "p99", "p999", "shed", "slo"} <= r.latency.keys()
        assert r.counters["traffic_admitted"] == r.latency["admitted"]
        assert r.counters["traffic_shed"] == r.latency["shed"]

    def test_fast_compat_bit_identical(self):
        rf, rc = self._run("fast"), self._run("compat")
        assert rf.latency == rc.latency
        assert rf.cycles == rc.cycles and rf.ops == rc.ops

    def test_lease_variant_also_identical(self):
        rf = self._run("fast", use_lease=True)
        rc = self._run("compat", use_lease=True)
        assert rf.latency == rc.latency

    def test_checkpoint_restore_histogram_identical(self):
        def build():
            m = Machine(MachineConfig(num_cores=2, seed=7, engine="fast"))
            m.enable_checkpointing()
            counter = LockedCounter(m, lock="tts")
            src = TrafficSource(SPEC, num_lanes=2, seed=7, key_range=16)
            for t in range(2):
                m.add_thread(traffic_counter_worker, counter, src.lane(t))
            return m, src

        ref_m, ref_src = build()
        ref_m.run()
        cut_m, _ = build()
        cut_m.run(until=max(1, ref_m.sim.now // 2))
        blob = json.dumps(cut_m.state_dict())      # must be JSON-safe
        res_m, res_src = build()
        res_m.load_state(json.loads(blob))
        res_m.run()
        assert res_src.histogram() == ref_src.histogram()
        assert (res_src.admitted, res_src.shed) == (ref_src.admitted,
                                                    ref_src.shed)


class TestCliGate:
    def test_slo_pass_exits_zero(self, capsys):
        rc = main(["run", "counter", "--threads", "2", "--seed", "3",
                   "--traffic", "poisson:rate=2.0,slo:p99=1000000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "tail latency" in out and "p999" in out

    def test_slo_miss_exits_one(self, capsys):
        rc = main(["run", "counter", "--threads", "2", "--seed", "3",
                   "--traffic", "poisson:rate=2.0,slo:p99=1"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "SLO: FAIL" in err

    def test_bad_spec_exits_two(self, capsys):
        rc = main(["run", "counter", "--threads", "2",
                   "--traffic", "bogus:rate=2"])
        assert rc == 2
        assert "--traffic:" in capsys.readouterr().err

    def test_closed_loop_experiment_rejects_traffic(self, capsys):
        rc = main(["run", "fig5_pagerank", "--threads", "2",
                   "--traffic", "poisson:rate=2.0"])
        assert rc == 2
        assert "no open-loop variant" in capsys.readouterr().err
