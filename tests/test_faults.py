"""repro.faults: spec grammar, seeded plans, and end-to-end determinism.

The contract under test is the PR's headline guarantee: a fault spec is a
pure function of ``(seed, spec string)`` -- byte-identical runs serially
and under ``--jobs`` -- and an *empty* spec changes nothing at all (no
plan object, no RNG draws, no behaviour difference).
"""

import dataclasses

import pytest

from conftest import make_machine

from repro import (ConfigError, FaultPlan, Lease, MachineConfig, Machine,
                   Release, Store, Work, build_plan, parse_fault_spec)
from repro.faults.spec import DEFAULT_NACK_RETRIES
from repro.harness.runner import sweep
from repro.workloads import bench_stack


# -- grammar -----------------------------------------------------------------

def test_parse_full_spec():
    s = parse_fault_spec("net_jitter:p=0.01,max=200;dir_nack:p=0.005;"
                         "timer_skew:±8;slow_core:3@10x")
    assert s.net_jitter_p == 0.01
    assert s.net_jitter_max == 200
    assert s.dir_nack_p == 0.005
    assert s.dir_nack_retries == DEFAULT_NACK_RETRIES
    assert s.timer_skew == 8
    assert s.slow_cores == ((3, 10),)
    assert not s.empty


def test_parse_empty_spec_is_empty():
    assert parse_fault_spec("").empty
    assert parse_fault_spec("  ").empty
    assert parse_fault_spec(None).empty


@pytest.mark.parametrize("form", ["timer_skew:±8", "timer_skew:8",
                                  "timer_skew:max=8", "timer_skew:+8"])
def test_timer_skew_accepts_all_forms(form):
    assert parse_fault_spec(form).timer_skew == 8


def test_dir_nack_retries_override():
    s = parse_fault_spec("dir_nack:p=0.5,retries=2")
    assert s.dir_nack_retries == 2


def test_slow_core_multiple_entries_sorted():
    s = parse_fault_spec("slow_core:5@2x,1@4x")
    assert s.slow_cores == ((1, 4), (5, 2))


@pytest.mark.parametrize("bad,msg", [
    ("nope:p=1", "unknown clause"),
    ("net_jitter:p=0.5", "needs p=<prob>,max=<cycles>"),
    ("net_jitter:p=2,max=10", "out of range"),
    ("net_jitter:p=x,max=10", "must be a float"),
    ("dir_nack:", "needs p=<prob>"),
    ("dir_nack:p=0.1,q=2", "unknown parameter"),
    ("dir_nack:p=0.1,p=0.2", "duplicate"),
    ("dir_nack:p=0.1;dir_nack:p=0.2", "duplicate clause"),
    ("timer_skew:", "needs a skew bound"),
    ("timer_skew:-8", "must be >= 0"),
    ("slow_core:", "needs <core>@<mult>x"),
    ("slow_core:3", "expected <core>@<mult>x"),
    ("slow_core:3@0x", "must be >= 1"),
    ("slow_core:3@2x,3@4x", "listed twice"),
])
def test_parse_rejects_malformed_specs(bad, msg):
    with pytest.raises(ConfigError, match=msg):
        parse_fault_spec(bad)


def test_config_validates_slow_core_range():
    with pytest.raises(ConfigError, match="out of range"):
        MachineConfig(num_cores=2, fault_spec="slow_core:5@2x")


# -- plans -------------------------------------------------------------------

def test_build_plan_empty_spec_returns_none():
    assert build_plan("", 1) is None
    assert build_plan("   ", 42) is None


def test_plan_streams_are_deterministic_per_seed():
    spec = "net_jitter:p=0.5,max=100;timer_skew:16"
    a = FaultPlan(parse_fault_spec(spec), 7)
    b = FaultPlan(parse_fault_spec(spec), 7)
    assert [a.net_extra() for _ in range(50)] == \
           [b.net_extra() for _ in range(50)]
    assert [a.timer_skew() for _ in range(50)] == \
           [b.timer_skew() for _ in range(50)]
    c = FaultPlan(parse_fault_spec(spec), 8)
    assert [a.net_extra() for _ in range(50)] != \
           [c.net_extra() for _ in range(50)]


def test_plan_streams_are_independent():
    """Enabling one fault kind must not perturb another kind's draws."""
    skew_only = FaultPlan(parse_fault_spec("timer_skew:16"), 7)
    combined = FaultPlan(parse_fault_spec(
        "timer_skew:16;net_jitter:p=0.5,max=100"), 7)
    for _ in range(20):
        combined.net_extra()          # interleave draws on another stream
    assert [skew_only.timer_skew() for _ in range(50)] == \
           [combined.timer_skew() for _ in range(50)]


def test_should_nack_caps_at_retry_limit():
    plan = FaultPlan(parse_fault_spec("dir_nack:p=1.0,retries=3"), 7)
    assert plan.should_nack(0) and plan.should_nack(2)
    assert not plan.should_nack(3)
    assert not plan.should_nack(100)


def test_retry_delay_positive_and_deterministic():
    a = FaultPlan(parse_fault_spec("dir_nack:p=0.5"), 7)
    b = FaultPlan(parse_fault_spec("dir_nack:p=0.5"), 7)
    da = [a.retry_delay(i) for i in range(1, 9)]
    assert da == [b.retry_delay(i) for i in range(1, 9)]
    assert all(d > 0 for d in da)


def test_core_scale_defaults_to_one():
    plan = FaultPlan(parse_fault_spec("slow_core:1@4x"), 7)
    assert plan.core_scale(1) == 4
    assert plan.core_scale(0) == 1


# -- machine integration -----------------------------------------------------

def _stack_result(fault_spec: str, seed: int = 1):
    cfg = dataclasses.replace(MachineConfig(), fault_spec=fault_spec,
                              seed=seed)
    return bench_stack(4, variant="lease", config=cfg)


def test_fault_free_machine_installs_no_plan():
    m = make_machine(2)
    assert m.faults is None


def test_fault_free_default_is_bit_identical():
    """``fault_spec=""`` must be indistinguishable from a config that
    never mentions faults: identical RunResult, field for field."""
    base = bench_stack(4, variant="lease", config=MachineConfig())
    explicit = _stack_result("")
    assert base == explicit


def test_same_seed_and_spec_is_byte_identical():
    spec = "net_jitter:p=0.05,max=120;dir_nack:p=0.02;timer_skew:8"
    assert _stack_result(spec, seed=7) == _stack_result(spec, seed=7)


def test_faults_actually_change_the_run():
    spec = "net_jitter:p=0.2,max=400;dir_nack:p=0.1"
    clean, faulty = _stack_result(""), _stack_result(spec)
    assert faulty.cycles != clean.cycles


def test_dir_nack_counters_reconcile_with_retries():
    cfg = dataclasses.replace(make_machine(4, seed=3).config,
                              fault_spec="dir_nack:p=0.3")
    m2 = Machine(cfg)
    addr = m2.alloc_var(0)

    def worker(ctx):
        for i in range(10):
            yield Store(addr, i)
            yield Work(5)

    for _ in range(4):
        m2.add_thread(worker)
    m2.run()
    assert m2.counters.dir_nacks > 0
    # Every NACK schedules exactly one retry.
    assert m2.counters.dir_nacks == m2.counters.dir_retries


def test_slow_core_finishes_later():
    def run(spec):
        cfg = MachineConfig(num_cores=2, fault_spec=spec)
        m = Machine(cfg)
        addr = m.alloc_var(0)
        done = {}

        def worker(ctx, tag):
            for i in range(20):
                yield Work(10)
                yield Store(addr + 64 * (1 + tag), i)
            done[tag] = ctx.machine.now

        m.add_thread(worker, 0)
        m.add_thread(worker, 1)
        m.run()
        return done

    clean = run("")
    throttled = run("slow_core:1@8x")
    assert throttled[1] > clean[1] * 4        # core 1 throttled hard
    assert throttled[0] <= clean[0] * 2       # core 0 barely affected
    # One fault_injected event per slow core, emitted at construction.
    assert clean != throttled


def test_timer_skew_changes_lease_duration_but_respects_cap():
    durations = []

    def run(spec):
        cfg = dataclasses.replace(
            MachineConfig(num_cores=1, fault_spec=spec))
        cfg = dataclasses.replace(
            cfg, lease=dataclasses.replace(cfg.lease, enabled=True,
                                           max_lease_time=100))
        m = Machine(cfg)
        from repro import Tracer
        from repro.trace.events import LeaseStarted

        class Grab(Tracer):
            def on_event(self, ev):
                if isinstance(ev, LeaseStarted):
                    durations.append(ev.duration)

        m.attach_tracer(Grab())
        addr = m.alloc_var(0)

        def t0(ctx):
            for _ in range(20):
                yield Lease(addr, 90)
                yield Release(addr)
                yield Work(5)

        m.add_thread(t0)
        m.run()

    run("timer_skew:50")
    assert durations                                # leases did start
    assert all(1 <= d <= 100 for d in durations)    # Prop-1-safe clamp
    assert len(set(durations)) > 1                  # skew actually applied


# -- serial vs parallel sweeps ------------------------------------------------

def test_fault_sweep_parallel_equals_serial():
    """The spec travels inside the picklable config, so --jobs workers
    rebuild identical plans: parallel == serial, cell for cell."""
    cfg = dataclasses.replace(
        MachineConfig(), fault_spec="net_jitter:p=0.05,max=80;"
                                    "dir_nack:p=0.02", seed=5)
    kw = dict(variants={"base": {"variant": "base"},
                        "lease": {"variant": "lease"}},
              thread_counts=(2, 4), config=cfg, ops_per_thread=10)
    serial = sweep(bench_stack, jobs=1, **kw)
    parallel = sweep(bench_stack, jobs=2, **kw)
    assert serial == parallel
