"""Fault-injection campaigns and interleaving exploration.

The tentpole guarantee: under injected faults (jitter, NACKs, timer skew,
stragglers) the linearizability checker and the Proposition-1 tracer must
still pass -- faults perturb *timing*, never correctness -- and every
faulty run stays deterministic and replayable through repro-check/1 files.
The interleaving tests drive the release-while-in-flight and
MultiLease-abort paths through the :mod:`repro.check` perturbation
strategies, with and without faults.
"""

import dataclasses
import json

import pytest

from conftest import make_machine

import repro.check.campaign as campaign
from repro import (InvariantTracer, Machine, MachineConfig, MultiLease,
                   ReleaseAll, Store, Work)
from repro.check import (PctStrategy, RandomStrategy, load_repro,
                         replay_repro, run_campaign)

#: A spec exercising every hook at rates high enough to fire in short runs.
FUZZ_SPEC = "net_jitter:p=0.02,max=120;dir_nack:p=0.01;timer_skew:±8"


# -- campaigns under faults ---------------------------------------------------

@pytest.mark.parametrize("target", ["treiber", "counter", "multilease"])
def test_fault_campaign_passes_checkers(target):
    rep = run_campaign(target, budget=6, seed=11, fault_spec=FUZZ_SPEC)
    assert rep.ok, f"{target}: {rep.failure.kind}: {rep.failure.detail}"
    assert rep.schedules_run == 6
    assert rep.ops_checked > 0


def test_fault_campaign_is_deterministic():
    a = run_campaign("counter", budget=4, seed=5, fault_spec=FUZZ_SPEC)
    b = run_campaign("counter", budget=4, seed=5, fault_spec=FUZZ_SPEC)
    assert a.ok and b.ok
    assert a.per_variant == b.per_variant
    assert a.ops_checked == b.ops_checked


def test_fault_repro_file_round_trips(tmp_path, monkeypatch):
    """A failure found under faults is recorded with its fault spec and
    replays with the same faults installed."""
    from test_check_campaign import _BrokenTreiberStack

    monkeypatch.setattr(campaign, "TreiberStack", _BrokenTreiberStack)
    rep = run_campaign("treiber", budget=200, seed=7,
                       fault_spec=FUZZ_SPEC)
    assert not rep.ok
    assert rep.repro["fault_spec"] == FUZZ_SPEC

    path = tmp_path / "repro.json"
    path.write_text(json.dumps(rep.repro))
    out = replay_repro(load_repro(str(path)))
    assert not out.ok and out.kind == "linearizability"


def test_faultfree_repro_files_stay_loadable():
    """Backward compatibility: repro-check/1 files written before this PR
    have no ``fault_spec`` key; replay must treat them as fault-free."""
    rep = run_campaign("counter", budget=1, seed=3)
    # Build a minimal pre-PR-style repro by hand from a passing campaign.
    assert rep.ok
    repro = {
        "format": campaign.REPRO_FORMAT,
        "target": "counter",
        "variant": "lease",
        "machine_seed": campaign._machine_seed(3, 0),
        "decisions": {},
        "strategy": {"kind": "replay"},
    }
    out = replay_repro(repro)
    assert out.ok            # no recorded failure to reproduce


# -- interleaving exploration (satellite 5) -----------------------------------

def _multilease_abort_machine(cfg: MachineConfig,
                              strategy=None) -> Machine:
    """Two cores racing so that a regular store breaks a MultiLease group
    while later members' grants are still in flight: the release-while-in-
    flight and MultiLease-abort paths in one workload."""
    m = Machine(cfg, schedule_strategy=strategy)
    a, b, c = m.alloc_var(0), m.alloc_var(0), m.alloc_var(0)

    def leaser(ctx):
        for _ in range(8):
            yield MultiLease((a, b, c), 2_000)
            yield Store(a, 1)
            yield ReleaseAll()
            yield Work(20)

    def breaker(ctx):
        for i in range(40):
            yield Store(a, i)          # regular request: breaks leases
            yield Work(15)

    m.add_thread(leaser)
    m.add_thread(breaker)
    return m


def _abort_cfg(fault_spec: str = "", seed: int = 1) -> MachineConfig:
    cfg = MachineConfig(num_cores=2, seed=seed, fault_spec=fault_spec)
    return dataclasses.replace(
        cfg, lease=dataclasses.replace(
            cfg.lease, enabled=True, prioritize_regular_requests=True))


@pytest.mark.parametrize("fault_spec", ["", FUZZ_SPEC])
@pytest.mark.parametrize("strategy_seed", [1, 2, 3, 4])
def test_multilease_abort_under_perturbation(fault_spec, strategy_seed):
    """Random schedule jitter explores grant/break interleavings; the
    invariant checker audits pins and coherence on every event."""
    cfg = _abort_cfg(fault_spec, seed=strategy_seed)
    m = _multilease_abort_machine(
        cfg, RandomStrategy(strategy_seed, rate=0.3, amplitude=4))
    checker = m.attach_tracer(InvariantTracer())
    m.run()
    m.check_coherence_invariants()
    assert checker.checks_run > 0
    # The workload actually drives the abort path.
    assert m.counters.releases_broken_by_priority > 0


@pytest.mark.parametrize("make_strategy", [
    lambda s: RandomStrategy(s, rate=0.4, amplitude=6),
    lambda s: PctStrategy(s, depth=4),
])
@pytest.mark.parametrize("fault_spec", ["", FUZZ_SPEC])
def test_abort_paths_survive_schedule_strategies(make_strategy, fault_spec):
    hit = 0
    for seed in (1, 2, 3):
        cfg = _abort_cfg(fault_spec, seed=seed)
        m = Machine(cfg, schedule_strategy=make_strategy(seed))
        a, b = m.alloc_var(0), m.alloc_var(0)

        def leaser(ctx):
            for _ in range(6):
                yield MultiLease((a, b), 2_000)
                yield Store(b, 1)
                yield ReleaseAll()

        def breaker(ctx):
            for i in range(30):
                yield Store(a, i)
                yield Work(10)

        m.add_thread(leaser)
        m.add_thread(breaker)
        checker = m.attach_tracer(InvariantTracer())
        m.run()
        m.check_coherence_invariants()
        assert checker.checks_run > 0
        hit += m.counters.releases_broken_by_priority
    assert hit > 0      # across seeds the break/abort path fired
