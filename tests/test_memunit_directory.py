"""Unit-level tests of MemUnit and Directory internals that the end-to-end
suites only reach indirectly: probe deferral between grant and completion,
stale probes/evictions, per-line FIFO queuing depth, Proposition 1."""

import pytest

from conftest import make_machine

from repro import CAS, FetchAdd, Load, ProtocolError, Store, Work
from repro.coherence.messages import MessageKind
from repro.coherence.states import DirState, LineState


class TestOutstandingRules:
    def test_second_outstanding_access_rejected(self):
        m = make_machine(1)
        unit = m.cores[0].memunit
        unit.access(True, 0x2000, is_lease=False, callback=lambda: None)
        with pytest.raises(ProtocolError):
            unit.access(True, 0x4000, is_lease=False, callback=lambda: None)

    def test_completion_for_unknown_request_rejected(self):
        m = make_machine(1)
        unit = m.cores[0].memunit
        from repro.coherence.directory import Request
        bogus = Request(MessageKind.GETX, 5, 0, False, lambda: None)
        with pytest.raises(ProtocolError):
            unit.complete_request(bogus)


class TestProbeDeferral:
    def test_granted_access_commits_before_probe(self):
        """A probe landing between grant and data arrival waits for the
        pending access -- so the granted core's CAS always observes its
        granted window."""
        m = make_machine(2, leases=False)
        addr = m.alloc_var(0)
        order = []

        def t0(ctx):
            ok = yield CAS(addr, 0, "t0")
            order.append(("t0", ok, ctx.machine.now))

        def t1(ctx):
            yield Work(3)   # request lands just behind t0's
            ok = yield CAS(addr, 0, "t1")
            order.append(("t1", ok, ctx.machine.now))

        m.add_thread(t0)
        m.add_thread(t1)
        m.run()
        m.check_coherence_invariants()
        results = {tag: ok for tag, ok, _ in order}
        # Exactly one CAS won, and it was the first to be granted.
        assert sorted(results.values()) == [False, True]
        assert m.peek(addr) in ("t0", "t1")


class TestDirectoryQueueing:
    def test_many_requesters_queue_fifo(self):
        m = make_machine(8, leases=False)
        addr = m.alloc_var(0)

        def worker(ctx):
            yield FetchAdd(addr, 1)

        for _ in range(8):
            m.add_thread(worker)
        m.run()
        m.check_coherence_invariants()
        assert m.peek(addr) == 8
        assert m.counters.dir_queued_requests > 0
        assert m.counters.dir_max_queue_depth >= 2

    def test_proposition_1_one_probe_queued_per_core(self):
        """At most one probe is ever deferred/queued per core per line --
        the deferral slot assertion would fire otherwise; this test just
        exercises heavy traffic over one line."""
        m = make_machine(8, leases=True,
                         prioritize_regular_requests=False)
        addr = m.alloc_var(0)

        def worker(ctx):
            from repro import Lease, Release
            for _ in range(10):
                yield Lease(addr, 300)
                v = yield Load(addr)
                yield CAS(addr, v, v + 1)
                yield Release(addr)

        for _ in range(8):
            m.add_thread(worker)
        m.run()
        m.check_coherence_invariants()
        assert m.peek(addr) == 80


class TestStalePaths:
    def test_preinstall_on_circulating_line_rejected(self):
        m = make_machine(2)
        addr = m.alloc_var(0)

        def reader(ctx):
            yield Load(addr)

        m.add_thread(reader)
        m.run()
        with pytest.raises(ProtocolError):
            m.directory.preinstall_owned(m.amap.line_of(addr), 1)

    def test_eviction_then_reacquire_is_consistent(self):
        """A line evicted and immediately re-acquired must not confuse the
        directory (the stale PutM is dropped)."""
        m = make_machine(1)
        cfg = m.config
        stride = cfg.l1_num_sets * cfg.line_size
        a = m.alloc.alloc(8, align=stride)
        b = m.alloc.alloc(8, align=stride)
        addrs = [m.alloc.alloc(8, align=stride)
                 for _ in range(cfg.l1_assoc - 1)]

        def worker(ctx):
            yield Store(a, 1)
            for x in addrs:
                yield Store(x, 2)
            yield Store(b, 3)      # evicts a (oldest)
            v = yield Load(a)      # immediately re-acquire
            assert v == 1

        m.add_thread(worker)
        m.run()
        m.check_coherence_invariants()

    def test_stale_sharer_inv_acks_immediately(self):
        """A sharer that silently lost the line (evicted) acks a late INV
        without breaking anything."""
        m = make_machine(2)
        cfg = m.config
        stride = cfg.l1_num_sets * cfg.line_size
        target = m.alloc.alloc(8, align=stride)
        fillers = [m.alloc.alloc(8, align=stride)
                   for _ in range(cfg.l1_assoc + 1)]

        def reader(ctx):
            yield Load(target)      # become a sharer
            for x in fillers:       # evict target from own L1
                yield Load(x)
            yield Work(50)

        def writer(ctx):
            yield Work(400)
            yield Store(target, 9)  # INVs the (stale) sharer

        m.add_thread(reader)
        m.add_thread(writer)
        m.run()
        m.check_coherence_invariants()
        assert m.peek(target) == 9


class TestDirectoryIntrospection:
    def test_state_owner_sharers_roundtrip(self):
        m = make_machine(2)
        addr = m.alloc_var(0)

        def writer(ctx):
            yield Store(addr, 1)

        m.add_thread(writer)
        m.run()
        line = m.amap.line_of(addr)
        assert m.directory.state_of(line) == DirState.MODIFIED
        assert m.directory.owner_of(line) == 0
        assert m.directory.sharers_of(line) == frozenset()
