"""Applications: barrier, Pagerank, snapshots."""

import pytest

from conftest import make_machine

from repro.apps import PagerankApp, SenseBarrier, SnapshotRegion, \
    make_web_graph
from repro.core.isa import Work


class TestBarrier:
    def test_no_thread_passes_early(self):
        m = make_machine(4, leases=False)
        bar = SenseBarrier(m, 4)
        log = []

        def worker(ctx, tag):
            yield Work((tag + 1) * 100)
            log.append(("arrive", tag, ctx.machine.now))
            sense = yield from bar.wait(ctx, 1)
            log.append(("pass", tag, ctx.machine.now))

        for tag in range(4):
            m.add_thread(worker, tag)
        m.run()
        last_arrival = max(t for kind, _, t in log if kind == "arrive")
        first_pass = min(t for kind, _, t in log if kind == "pass")
        assert first_pass >= last_arrival

    def test_reusable_across_phases(self):
        m = make_machine(3, leases=False)
        bar = SenseBarrier(m, 3)
        phases = []

        def worker(ctx, tag):
            sense = 1
            for phase in range(3):
                yield Work((tag + 1) * 30)
                sense = yield from bar.wait(ctx, sense)
                phases.append((phase, tag))

        for tag in range(3):
            m.add_thread(worker, tag)
        m.run()
        # All of phase k completes before any of phase k+1 starts.
        order = [p for p, _ in phases]
        assert order == sorted(order)


class TestWebGraph:
    def test_dangling_fraction(self):
        in_nbrs, out_deg, dangling = make_web_graph(100)
        assert sum(dangling) == 25

    def test_dangling_pages_have_no_outlinks(self):
        in_nbrs, out_deg, dangling = make_web_graph(80)
        for p in range(80):
            if dangling[p]:
                assert out_deg[p] == 0

    def test_in_neighbors_consistent_with_outdeg(self):
        in_nbrs, out_deg, dangling = make_web_graph(60)
        total_in = sum(len(x) for x in in_nbrs)
        assert total_in == sum(out_deg)

    def test_deterministic(self):
        a = make_web_graph(50, seed=9)
        b = make_web_graph(50, seed=9)
        assert a == b


class TestPagerank:
    @pytest.mark.parametrize("leases", [False, True])
    def test_ranks_form_distribution(self, leases):
        m = make_machine(4, leases=leases)
        app = PagerankApp(m, num_pages=64, num_threads=4, iterations=2)
        for tid in range(4):
            m.add_thread(app.worker, tid)
        m.run()
        m.check_coherence_invariants()
        ranks = app.ranks_direct()
        assert all(r > 0 for r in ranks)
        # Rank mass stays near 1 (the final dangling redistribution is
        # applied next iteration, so allow that slack).
        assert 0.7 < sum(ranks) <= 1.001

    def test_lease_and_base_compute_same_ranks(self):
        """Leases are a performance mechanism: results must be identical."""
        results = []
        for leases in (False, True):
            m = make_machine(4, leases=leases)
            app = PagerankApp(m, num_pages=64, num_threads=4, iterations=2)
            for tid in range(4):
                m.add_thread(app.worker, tid)
            m.run()
            results.append(app.ranks_direct())
        assert results[0] == pytest.approx(results[1])

    def test_lease_speeds_up_contended_run(self):
        def run(leases):
            m = make_machine(16, leases=leases)
            app = PagerankApp(m, num_pages=128, num_threads=16,
                              iterations=2)
            for tid in range(16):
                m.add_thread(app.worker, tid)
            return m.run()

        assert run(True) < run(False)


class TestSnapshot:
    def test_lease_snapshot_is_atomic(self):
        """Validate against a write log: the returned snapshot must equal
        the reconstructed memory state at some single instant."""
        m = make_machine(4, leases=True,
                         prioritize_regular_requests=False)
        sr = SnapshotRegion(m, 4)
        log = []        # (time, index, value) from writers
        snaps = []      # (time, values)

        def writer(ctx, idx):
            for i in range(30):
                val = (ctx.tid, i)
                yield from sr.write(ctx, idx, val)
                log.append((ctx.machine.now, idx, val))
                yield Work(40)

        def snapper(ctx):
            for _ in range(10):
                vals = yield from sr.snapshot_lease(ctx)
                snaps.append((ctx.machine.now, vals))
                yield Work(60)

        for idx in range(3):
            m.add_thread(writer, idx)
        m.add_thread(snapper)
        m.run()

        def state_at(t):
            state = [0, 0, 0, 0]
            for when, idx, val in sorted(log):
                if when > t:
                    break
                state[idx] = val
            return state

        times = sorted({t for t, _, _ in log})
        for snap_time, vals in snaps:
            candidates = [t for t in times if t <= snap_time] or [0]
            ok = any(state_at(t) == vals for t in [0] + candidates)
            assert ok, f"snapshot {vals} matches no instant"

    def test_double_collect_is_atomic(self):
        m = make_machine(3, leases=True,
                         prioritize_regular_requests=False)
        sr = SnapshotRegion(m, 3)
        snaps = []

        def writer(ctx):
            for i in range(20):
                yield from sr.write(ctx, ctx.rng.randrange(3), i)
                yield Work(200)

        def snapper(ctx):
            for _ in range(5):
                vals = yield from sr.snapshot_double_collect(ctx)
                snaps.append(vals)
                yield Work(100)

        m.add_thread(writer)
        m.add_thread(writer)
        m.add_thread(snapper)
        m.run()
        assert len(snaps) == 5

    def test_too_many_words_rejected(self):
        m = make_machine(1, max_num_leases=2)
        with pytest.raises(ValueError):
            SnapshotRegion(m, 3)

    def test_stop_flag_halts_open_loop_writers(self):
        m = make_machine(2, leases=True,
                         prioritize_regular_requests=False)
        sr = SnapshotRegion(m, 2)
        m.add_thread(sr.writer_worker, None, 20)
        m.add_thread(sr.snapshot_worker, 5, use_lease=True,
                     stop_when_done=True)
        m.run()   # terminates because the snapshotter raises the flag
        assert sr.stop_flag
