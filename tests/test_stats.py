"""Stats: counters, energy model, run reports."""

import pytest

from repro import Counters, EnergyModel, RunResult
from repro.config import EnergyConfig
from repro.stats.report import format_table


class TestCounters:
    def test_note_op(self):
        k = Counters()
        k.note_op(0)
        k.note_op(0)
        k.note_op(3)
        assert k.ops_completed == 3
        assert k.per_core_ops == {0: 2, 3: 1}

    def test_snapshot_delta(self):
        k = Counters()
        k.l1_hits = 5
        snap = k.snapshot()
        k.l1_hits = 12
        k.messages = 3
        d = k.delta(snap)
        assert d["l1_hits"] == 7
        assert d["messages"] == 3

    def test_reset(self):
        k = Counters()
        k.l1_hits = 5
        k.note_op(1)
        k.reset()
        assert k.l1_hits == 0
        assert k.ops_completed == 0
        assert k.per_core_ops == {}


class TestEnergyModel:
    def test_zero_counters_static_only(self):
        cfg = EnergyConfig(static_nj_per_core_cycle=0.5)
        em = EnergyModel(cfg, num_cores=4)
        assert em.total_nj(Counters(), cycles=10) == 0.5 * 4 * 10

    def test_dynamic_terms(self):
        cfg = EnergyConfig(l1_access_nj=1, l2_access_nj=2, dram_access_nj=3,
                           message_nj=4, hop_nj=5, data_message_nj=6,
                           static_nj_per_core_cycle=0)
        em = EnergyModel(cfg, num_cores=1)
        k = Counters()
        k.l1_hits, k.l1_misses = 1, 1
        k.l2_accesses = 1
        k.dram_accesses = 1
        k.messages, k.hops, k.data_messages = 1, 1, 1
        assert em.total_nj(k, 0) == 2 * 1 + 2 + 3 + 4 + 5 + 6

    def test_nj_per_op_divides_by_ops(self):
        cfg = EnergyConfig(static_nj_per_core_cycle=1)
        em = EnergyModel(cfg, num_cores=1)
        k = Counters()
        k.ops_completed = 10
        assert em.nj_per_op(k, cycles=100) == 10.0

    def test_delta_form_matches(self):
        cfg = EnergyConfig()
        em = EnergyModel(cfg, num_cores=2)
        k = Counters()
        k.l1_hits, k.messages, k.hops = 7, 3, 9
        snap = Counters().snapshot()
        assert em.total_nj_from_delta(k.delta(snap), 50) == \
            em.total_nj(k, 50)


class TestRunResult:
    def make(self):
        return RunResult(name="x", num_threads=4, cycles=1000, ops=100,
                         throughput_ops_per_sec=1e8,
                         energy_nj_per_op=12.5, messages_per_op=4.0,
                         l1_misses_per_op=2.0, cas_failure_rate=0.1)

    def test_mops(self):
        assert self.make().mops_per_sec == 100.0

    def test_row_and_str(self):
        r = self.make()
        row = r.row()
        assert row["threads"] == 4
        assert "mops_per_sec=100.0" in str(r)

    def test_latency_payload_adds_columns(self):
        r = self.make()
        r.latency = {"p50": 10, "p99": 40, "p999": 80, "shed": 3,
                     "slo": "pass"}
        row = r.row()
        assert (row["p50"], row["p99"], row["p999"]) == (10, 40, 80)
        assert row["shed"] == 3
        assert row["slo"] == "pass"

    # Regression: extra keys shadowing built-in columns used to silently
    # overwrite them (a benchmark stuffing "ops" into extra corrupted
    # every table); collisions now raise.
    def test_extra_colliding_with_builtin_raises(self):
        r = self.make()
        r.extra = {"ops": 1}
        with pytest.raises(ValueError, match="ops"):
            r.row()

    def test_extra_colliding_with_latency_column_raises(self):
        r = self.make()
        r.latency = {"p99": 40}
        r.extra = {"p99": 99}
        with pytest.raises(ValueError, match="p99"):
            r.row()

    def test_non_colliding_extra_ok(self):
        r = self.make()
        r.extra = {"fairness": 0.5}
        assert r.row()["fairness"] == 0.5


class TestFormatTable:
    def test_alignment(self):
        rows = [{"a": 1, "bb": "xy"}, {"a": 100, "bb": "z"}]
        out = format_table(rows)
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a ")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    # Regression: columns used to come from the first row only, so a
    # sweep whose later rows grew latency columns dropped them from the
    # table.  Columns are now the first-seen ordered union across rows.
    def test_columns_union_across_rows(self):
        rows = [{"a": 1}, {"a": 2, "p99": 40}, {"b": 3}]
        out = format_table(rows)
        header = out.splitlines()[0]
        assert [h.strip() for h in header.split("|")] == ["a", "p99", "b"]

    def test_missing_cells_render_blank(self):
        rows = [{"a": 1}, {"a": 2, "p99": 40}]
        lines = format_table(rows).splitlines()
        # Row 1 has no p99: its cell is blank but still padded.
        assert len(lines[2]) == len(lines[3])
        assert "40" in lines[3] and "40" not in lines[2]
