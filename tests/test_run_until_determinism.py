"""run(until=...) must not perturb event ordering: a paused-and-resumed
simulation is bit-identical to an uninterrupted one."""

from conftest import make_machine

from repro import CAS, Load, Work
from repro.structures import TreiberStack


def _build(seed=3):
    m = make_machine(4, seed=seed)
    stack = TreiberStack(m)
    stack.prefill(range(16))
    for _ in range(4):
        m.add_thread(stack.update_worker, 10)
    return m, stack


def test_pause_resume_identical_to_straight_run():
    m1, s1 = _build()
    m1.run()

    m2, s2 = _build()
    # Resume in many small slices.
    t = 0
    while m2._live_threads:
        t += 97
        m2.run(until=t)
    assert m2.now <= m1.now or m2.now >= m1.now  # trivially true; real
    # checks below: identical end state and traffic.
    assert s1.drain_direct() == s2.drain_direct()
    assert m1.counters.messages == m2.counters.messages
    assert m1.counters.l1_misses == m2.counters.l1_misses


def test_same_time_events_keep_order_across_pause():
    from repro.engine import Simulator
    sim = Simulator()
    order = []
    sim.at(100, lambda: order.append("a"))
    sim.at(100, lambda: order.append("b"))
    sim.at(100, lambda: order.append("c"))
    sim.run(until=50)
    sim.run()
    assert order == ["a", "b", "c"]
