"""Latency histogram: bucket math, percentiles, merge, serialization.

The histogram backs the open-loop traffic engine's identity contracts
(fast vs compat, checkpoint/restore, serial vs --jobs), so beyond the
usual unit checks these tests pin the *exactness* properties: integer
bucket indices, deterministic percentiles, byte-stable state dicts.
"""

import json

import pytest
from hypothesis import given, strategies as st

from repro.stats.latency import (LatencyHistogram, SUB_BUCKETS,
                                 bucket_bounds, bucket_index)


class TestBucketMath:
    def test_small_values_get_exact_buckets(self):
        for v in range(SUB_BUCKETS):
            assert bucket_index(v) == v
            assert bucket_bounds(bucket_index(v)) == (v, v)

    def test_indices_monotone_nondecreasing(self):
        idxs = [bucket_index(v) for v in range(4096)]
        assert idxs == sorted(idxs)

    @given(st.integers(0, 2 ** 40))
    def test_value_lands_inside_its_bounds(self, v):
        low, high = bucket_bounds(bucket_index(v))
        assert low <= v <= high

    @given(st.integers(SUB_BUCKETS, 10_000))
    def test_relative_error_bounded(self, v):
        # Log-linear layout: any bucket's width is <= value / SUB_BUCKETS,
        # which is what bounds percentile rounding error at 1/16.
        low, high = bucket_bounds(bucket_index(v))
        assert (high - low + 1) * SUB_BUCKETS <= 2 * (low + 1)

    def test_bounds_tile_without_gaps(self):
        prev_high = -1
        for idx in range(200):
            low, high = bucket_bounds(idx)
            if idx <= SUB_BUCKETS:
                # 0..15 exact, then the first octave bucket restates 16.
                assert low in (idx, SUB_BUCKETS)
            else:
                assert low == prev_high + 1
            assert high >= low
            prev_high = high


class TestRecordAndQuery:
    def test_empty_percentile_is_none(self):
        assert LatencyHistogram().percentile(0.5) is None
        assert LatencyHistogram().percentiles() == {}

    def test_quantile_out_of_range_raises(self):
        h = LatencyHistogram()
        h.record(5)
        for q in (-0.1, 1.1):
            with pytest.raises(ValueError):
                h.percentile(q)

    def test_exact_small_percentiles(self):
        h = LatencyHistogram()
        for v in range(1, 11):        # 1..10, all in exact buckets
            h.record(v)
        assert h.percentile(0.5) == 5
        assert h.percentile(1.0) == 10
        assert h.percentile(0.0) == 1

    def test_percentile_never_exceeds_max(self):
        h = LatencyHistogram()
        h.record(1000)                # bucket upper bound is > 1000
        assert h.percentile(0.999) == 1000

    def test_negative_clamps_to_zero(self):
        h = LatencyHistogram()
        h.record(-7)
        assert h.min == 0 and h.max == 0 and h.sum == 0

    def test_mean_min_max(self):
        h = LatencyHistogram()
        for v in (2, 4, 9):
            h.record(v)
        assert h.mean == 5.0
        assert (h.min, h.max, h.total) == (2, 9, 3)
        assert LatencyHistogram().mean == 0.0

    def test_merge_equals_recording_into_one(self):
        a, b, both = (LatencyHistogram() for _ in range(3))
        for v in (1, 5, 300):
            a.record(v)
            both.record(v)
        for v in (2, 5, 70_000):
            b.record(v)
            both.record(v)
        a.merge(b)
        assert a == both

    def test_merge_empty_is_identity(self):
        h = LatencyHistogram()
        h.record(42)
        before = h.state_dict()
        h.merge(LatencyHistogram())
        assert h.state_dict() == before


class TestIdentityAndState:
    def test_eq_and_ne(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(10)
        b.record(10)
        assert a == b
        b.record(11)
        assert a != b
        assert a.__eq__(object()) is NotImplemented

    def test_state_roundtrip(self):
        h = LatencyHistogram()
        for v in (0, 3, 17, 1024, 999_999):
            h.record(v)
        assert LatencyHistogram.from_state(h.state_dict()) == h

    def test_state_json_byte_stable(self):
        # Same samples in a different order -> identical JSON: the
        # sorted bucket list is what makes divergence dumps diffable.
        a, b = LatencyHistogram(), LatencyHistogram()
        for v in (5, 900, 33):
            a.record(v)
        for v in (33, 5, 900):
            b.record(v)
        assert (json.dumps(a.state_dict(), sort_keys=True)
                == json.dumps(b.state_dict(), sort_keys=True))

    @given(st.lists(st.integers(0, 2 ** 24), max_size=40))
    def test_property_roundtrip_any_samples(self, values):
        h = LatencyHistogram()
        for v in values:
            h.record(v)
        blob = json.dumps(h.state_dict())
        assert LatencyHistogram.from_state(json.loads(blob)) == h
