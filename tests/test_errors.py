"""Error types and their diagnostic payloads."""

import pytest

from repro import (AllocationError, ConfigError, LeaseError, ProtocolError,
                   ReproError, SimulationError, SimulationTimeout)
from repro.errors import ReproError as BaseError
from repro.mem import AddressMap


def test_hierarchy():
    for exc in (ConfigError, SimulationError, SimulationTimeout,
                LeaseError, AllocationError):
        assert issubclass(exc, ReproError)
    assert issubclass(ProtocolError, SimulationError)
    assert BaseError is ReproError


def test_timeout_carries_diagnostics():
    e = SimulationTimeout("boom", cycle=123, events=456,
                          running_threads=7)
    assert e.cycle == 123
    assert e.events == 456
    assert e.running_threads == 7
    assert "boom" in str(e)


def test_timeout_defaults_none():
    e = SimulationTimeout("x")
    assert e.cycle is None and e.events is None


def test_address_map_validation():
    with pytest.raises(ConfigError):
        AddressMap(48, 4)       # not a power of two
    with pytest.raises(ConfigError):
        AddressMap(64, 0)       # no tiles


def test_errors_catchable_as_repro_error():
    try:
        raise LeaseError("nested")
    except ReproError as e:
        assert "nested" in str(e)
