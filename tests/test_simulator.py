"""Simulator run loop: clock, budgets, quiescence, scheduling rules."""

import pytest

from repro.engine import Simulator
from repro.errors import SimulationError, SimulationTimeout


def test_clock_advances_to_event_times():
    sim = Simulator()
    seen = []
    sim.at(10, lambda: seen.append(sim.now))
    sim.at(25, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [10, 25]
    assert sim.now == 25


def test_after_is_relative():
    sim = Simulator()
    seen = []

    def first():
        sim.after(5, lambda: seen.append(sim.now))

    sim.at(10, first)
    sim.run()
    assert seen == [15]


def test_cannot_schedule_into_the_past():
    sim = Simulator()
    sim.at(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(5, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.after(-1, lambda: None)


def test_until_stops_and_preserves_pending():
    sim = Simulator()
    seen = []
    sim.at(10, lambda: seen.append("a"))
    sim.at(100, lambda: seen.append("b"))
    sim.run(until=50)
    assert seen == ["a"]
    assert sim.now == 50
    sim.run()
    assert seen == ["a", "b"]


def test_until_advances_clock_when_queue_drains():
    """The queue emptying before the horizon must not strand the clock at
    the last event: run(until=N) means 'simulate N cycles'."""
    sim = Simulator()
    sim.at(10, lambda: None)
    assert sim.run(until=50) == 50
    assert sim.now == 50


def test_until_on_empty_queue_advances_clock():
    sim = Simulator()
    assert sim.run(until=30) == 30
    assert sim.now == 30


def test_until_in_the_past_never_moves_clock_backwards():
    sim = Simulator()
    sim.at(40, lambda: None)
    sim.run()
    assert sim.now == 40
    assert sim.run(until=10) == 40
    assert sim.now == 40


def test_quiescence_beats_until_horizon():
    """Quiescence stops the run first: the clock stays at the last
    processed event, not the horizon."""
    sim = Simulator()
    done = []
    sim.quiescent = lambda: bool(done)
    sim.at(5, lambda: done.append(True))
    sim.run(until=100)
    assert sim.now == 5


def test_deferred_event_fires_after_resume():
    """An event beyond the horizon keeps its (time, seq) slot: scheduling
    more work before resuming must not reorder same-time events."""
    sim = Simulator()
    seen = []
    sim.at(100, lambda: seen.append("first"))
    sim.run(until=50)
    assert sim.now == 50 and seen == []
    sim.at(100, lambda: seen.append("second"))
    sim.run()
    assert seen == ["first", "second"]
    assert sim.now == 100


def test_incremental_until_equals_single_run():
    """Stepping the horizon forward in chunks processes the same events in
    the same order as one uninterrupted run."""
    def build():
        sim = Simulator()
        seen = []
        for t in (3, 7, 7, 12, 30):
            sim.at(t, lambda t=t: seen.append((sim.now, t)))
        return sim, seen

    sim_a, seen_a = build()
    sim_a.run()
    sim_b, seen_b = build()
    for horizon in (5, 7, 10, 29, 31, 40):
        sim_b.run(until=horizon)
        assert sim_b.now == horizon
    assert seen_a == seen_b


def test_max_events_budget():
    sim = Simulator(max_events=100)

    def tick():
        sim.after(1, tick)

    sim.at(0, tick)
    with pytest.raises(SimulationTimeout) as exc:
        sim.run()
    assert exc.value.events == 101


def test_max_cycles_budget():
    sim = Simulator(max_cycles=1000)
    sim.at(2000, lambda: None)
    with pytest.raises(SimulationTimeout):
        sim.run()


def test_quiescence_stops_early():
    sim = Simulator()
    seen = []
    done = []
    sim.quiescent = lambda: bool(done)
    sim.at(1, lambda: (seen.append(1), done.append(True)))
    sim.at(1000, lambda: seen.append(2))   # never fires: quiescent first
    sim.run()
    assert seen == [1]


def test_cancel_through_simulator():
    sim = Simulator()
    seen = []
    ev = sim.at(5, lambda: seen.append(1))
    sim.cancel(ev)
    sim.run()
    assert seen == []


def test_run_not_reentrant():
    sim = Simulator()
    err = []

    def inner():
        try:
            sim.run()
        except SimulationError as e:
            err.append(e)

    sim.at(1, inner)
    sim.run()
    assert len(err) == 1


def test_rng_is_seeded():
    a = Simulator(seed=42).rng.random()
    b = Simulator(seed=42).rng.random()
    c = Simulator(seed=43).rng.random()
    assert a == b
    assert a != c


def test_events_processed_counter():
    sim = Simulator()
    for i in range(7):
        sim.at(i, lambda: None)
    sim.run()
    assert sim.events_processed == 7
