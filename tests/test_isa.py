"""Every instruction of the simulated ISA, end to end on a tiny machine."""

import pytest

from conftest import make_machine

from repro import (CAS, Fence, FetchAdd, Lease, Load, MultiLease, Release,
                   ReleaseAll, Store, Swap, TestAndSet, Work)
from repro.core import isa


def run_body(m, body):
    out = []

    def wrapper(ctx):
        result = yield from body(ctx)
        out.append(result)

    m.add_thread(wrapper)
    m.run()
    return out[0]


class TestInstructionResults:
    def test_load_returns_value(self, machine1):
        addr = machine1.alloc_var("payload")

        def body(ctx):
            return (yield Load(addr))

        assert run_body(machine1, body) == "payload"

    def test_store_returns_none(self, machine1):
        addr = machine1.alloc_var(0)

        def body(ctx):
            return (yield Store(addr, 3))

        assert run_body(machine1, body) is None
        assert machine1.peek(addr) == 3

    def test_cas_returns_bool(self, machine1):
        addr = machine1.alloc_var(1)

        def body(ctx):
            a = yield CAS(addr, 1, 2)
            b = yield CAS(addr, 1, 3)
            return (a, b)

        assert run_body(machine1, body) == (True, False)
        assert machine1.peek(addr) == 2

    def test_fetch_add_returns_old(self, machine1):
        addr = machine1.alloc_var(10)

        def body(ctx):
            return (yield FetchAdd(addr, 5))

        assert run_body(machine1, body) == 10
        assert machine1.peek(addr) == 15

    def test_fetch_add_default_delta(self):
        assert FetchAdd(8).delta == 1

    def test_swap_returns_old(self, machine1):
        addr = machine1.alloc_var("old")

        def body(ctx):
            return (yield Swap(addr, "new"))

        assert run_body(machine1, body) == "old"
        assert machine1.peek(addr) == "new"

    def test_test_and_set(self, machine1):
        addr = machine1.alloc_var(0)

        def body(ctx):
            a = yield TestAndSet(addr)
            b = yield TestAndSet(addr)
            return (a, b)

        assert run_body(machine1, body) == (0, 1)
        assert machine1.peek(addr) == 1

    def test_fence_is_ordering_noop(self, machine1):
        def body(ctx):
            yield Fence()
            return "done"

        assert run_body(machine1, body) == "done"

    def test_work_advances_clock(self, machine1):
        def body(ctx):
            yield Work(123)
            return ctx.machine.now

        assert run_body(machine1, body) == 123

    def test_work_minimum_one_cycle(self, machine1):
        def body(ctx):
            yield Work(0)
            return ctx.machine.now

        assert run_body(machine1, body) == 1

    def test_release_all_with_nothing_held(self, machine1):
        def body(ctx):
            yield ReleaseAll()
            return "ok"

        assert run_body(machine1, body) == "ok"

    def test_multilease_dedups_same_line_addrs(self, machine1):
        """Two addresses on one line form a single-entry group."""
        base = machine1.alloc.alloc_line()

        def body(ctx):
            yield MultiLease((base, base + 8), 10_000)
            n = len(machine1.cores[0].lease_mgr.table)
            yield ReleaseAll()
            return n

        assert run_body(machine1, body) == 1


class TestInstructionObjects:
    def test_default_lease_time_is_huge(self):
        assert Lease(0).time >= 1 << 60

    def test_multilease_normalizes_to_tuple(self):
        ml = MultiLease([8, 16])
        assert ml.addrs == (8, 16)

    def test_slots_no_dict(self):
        for cls, args in [(Load, (8,)), (Store, (8, 1)), (CAS, (8, 0, 1)),
                          (Work, (5,)), (Lease, (8,)), (Release, (8,)),
                          (TestAndSet, (8,)), (Swap, (8, 1)),
                          (FetchAdd, (8,))]:
            with pytest.raises(AttributeError):
                cls(*args).__dict__
