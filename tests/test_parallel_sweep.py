"""Parallel sweep execution: same results as serial, deterministically."""

import pytest

from repro.harness.runner import sweep
from repro.harness.experiments import run_experiment
from repro.trace import RingBufferTracer
from repro.workloads.driver import bench_stack


VARIANTS = {"base": {"variant": "base"}, "lease": {"variant": "lease"}}


def test_parallel_sweep_equals_serial():
    serial = sweep(bench_stack, VARIANTS, (2, 4), ops_per_thread=15)
    parallel = sweep(bench_stack, VARIANTS, (2, 4), jobs=4,
                     ops_per_thread=15)
    # RunResult equality covers every field including the full counter
    # snapshot, so this is a bit-level determinism check.
    assert serial == parallel


def test_parallel_sweep_preserves_cell_order():
    res = sweep(bench_stack, VARIANTS, (4, 2), jobs=2, ops_per_thread=10)
    assert list(res) == ["base", "lease"]
    assert [r.num_threads for r in res["base"]] == [4, 2]
    assert [r.num_threads for r in res["lease"]] == [4, 2]


def test_run_experiment_jobs_passthrough():
    serial = run_experiment("fig2_stack", thread_counts=(2,),
                            ops_per_thread=10)
    parallel = run_experiment("fig2_stack", thread_counts=(2,), jobs=2,
                              ops_per_thread=10)
    assert serial == parallel


def test_sweep_rejects_sinks_with_jobs():
    with pytest.raises(ValueError, match="sinks"):
        sweep(bench_stack, VARIANTS, (2, 4), jobs=2,
              sinks=[RingBufferTracer()])


def test_sweep_rejects_sinks_hidden_in_variant_kwargs():
    # Sinks smuggled into one variant's kwargs (not the sweep-wide common
    # kwargs) must hit the same clear error, not a pickling failure.
    variants = {"base": {"variant": "base"},
                "traced": {"variant": "lease",
                           "sinks": [RingBufferTracer()]}}
    with pytest.raises(ValueError, match="sinks"):
        sweep(bench_stack, variants, (2, 4), jobs=2, ops_per_thread=10)


def test_sweep_allows_empty_sinks_with_jobs():
    # An explicit empty/None sinks entry is harmless and must not trip
    # the guard.
    variants = {"base": {"variant": "base", "sinks": None}}
    res = sweep(bench_stack, variants, (2, 4), jobs=2, ops_per_thread=10)
    assert [r.num_threads for r in res["base"]] == [2, 4]


def test_single_cell_sweep_stays_serial():
    # One cell: nothing to parallelize; sinks are allowed even with jobs>1.
    ring = RingBufferTracer()
    res = sweep(bench_stack, {"base": {"variant": "base"}}, (2,), jobs=4,
                ops_per_thread=10, sinks=[ring])
    assert ring.total > 0
    assert res["base"][0].ops == 20
