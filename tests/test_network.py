"""Mesh network latency model and traffic accounting."""

from repro.config import NetworkConfig
from repro.coherence import MeshNetwork, MessageKind
from repro.engine import Simulator
from repro.trace import CountersTracer, TraceBus


def make_net(num_tiles=16, **kw):
    sim = Simulator()
    sink = CountersTracer()
    bus = TraceBus(clock=lambda: sim.now, sinks=(sink,))
    net = MeshNetwork(NetworkConfig(**kw), num_tiles, sim, bus)
    return net, sim, sink.counters


def test_mesh_dimension_covers_tiles():
    net, _, _ = make_net(16)
    assert net.dim == 4
    net, _, _ = make_net(5)
    assert net.dim == 3


def test_self_message_zero_hops():
    net, _, _ = make_net(16)
    assert net.hops(3, 3) == 0


def test_manhattan_distance():
    net, _, _ = make_net(16)   # 4x4 row-major
    assert net.hops(0, 3) == 3          # (0,0) -> (3,0)
    assert net.hops(0, 15) == 6         # (0,0) -> (3,3)
    assert net.hops(5, 6) == 1


def test_hops_symmetric():
    net, _, _ = make_net(16)
    for a in range(16):
        for b in range(16):
            assert net.hops(a, b) == net.hops(b, a)


def test_latency_formula():
    net, _, _ = make_net(16, base_latency=4, hop_latency=2, data_latency=8)
    assert net.latency(0, 0, MessageKind.ACK) == 4
    assert net.latency(0, 15, MessageKind.ACK) == 4 + 2 * 6
    assert net.latency(0, 15, MessageKind.DATA) == 4 + 2 * 6 + 8


def test_data_kinds():
    assert MessageKind.DATA.carries_data
    assert MessageKind.PUTM.carries_data
    assert not MessageKind.GETS.carries_data
    assert not MessageKind.ACK.carries_data


def test_send_counts_and_delivers():
    net, sim, k = make_net(16)
    got = []
    net.send(0, 15, MessageKind.DATA, got.append, "payload")
    assert k.messages == 1
    assert k.data_messages == 1
    assert k.hops == 6
    sim.run()
    assert got == ["payload"]
    assert sim.now == net.latency(0, 15, MessageKind.DATA)


def test_control_message_not_counted_as_data():
    net, sim, k = make_net(4)
    net.send(0, 1, MessageKind.INV, lambda: None)
    assert k.messages == 1
    assert k.data_messages == 0
