"""Harris list, lock-free skiplist, hash table, BST: set semantics,
sorted-order invariants, concurrent linearizability smoke tests."""

import pytest
from hypothesis import given, settings, strategies as st

from conftest import make_machine

from repro.structures import (HarrisList, LockFreeSkipList, LockedExternalBST,
                              LockedHashTable)

ALL = [HarrisList, LockFreeSkipList, LockedHashTable, LockedExternalBST]
SORTED = [HarrisList, LockFreeSkipList]   # keys_direct returns sorted keys


def build(cls, m):
    return cls(m)


@pytest.mark.parametrize("cls", ALL)
class TestSequentialSetSemantics:
    def test_insert_contains_delete(self, cls):
        m = make_machine(1)
        s = build(cls, m)
        out = []

        def body(ctx):
            out.append((yield from s.insert(ctx, 5)))      # True
            out.append((yield from s.insert(ctx, 5)))      # False (dup)
            out.append((yield from s.contains(ctx, 5)))    # True
            out.append((yield from s.contains(ctx, 6)))    # False
            out.append((yield from s.delete(ctx, 5)))      # True
            out.append((yield from s.delete(ctx, 5)))      # False
            out.append((yield from s.contains(ctx, 5)))    # False

        m.add_thread(body)
        m.run()
        assert out == [True, False, True, False, True, False, False]

    def test_many_keys(self, cls):
        m = make_machine(1)
        s = build(cls, m)
        keys = [3, 1, 4, 15, 9, 2, 6, 53, 58, 97, 93, 23]

        def body(ctx):
            for k in keys:
                yield from s.insert(ctx, k)
            for k in keys:
                ok = yield from s.contains(ctx, k)
                assert ok, k

        m.add_thread(body)
        m.run()
        assert sorted(s.keys_direct()) == sorted(keys)

    def test_prefill_then_ops(self, cls):
        m = make_machine(1)
        s = build(cls, m)
        s.prefill(range(0, 20, 2))
        out = []

        def body(ctx):
            out.append((yield from s.contains(ctx, 4)))
            out.append((yield from s.contains(ctx, 5)))
            out.append((yield from s.delete(ctx, 4)))
            out.append((yield from s.insert(ctx, 5)))

        m.add_thread(body)
        m.run()
        assert out == [True, False, True, True]
        assert sorted(s.keys_direct()) == sorted(
            set(range(0, 20, 2)) - {4} | {5})

    @given(st.lists(st.tuples(st.sampled_from(["ins", "del", "has"]),
                              st.integers(0, 15)), max_size=25))
    @settings(max_examples=15, deadline=None)
    def test_property_matches_set_model(self, cls, ops):
        m = make_machine(1)
        s = build(cls, m)
        model: set = set()
        expect, got = [], []
        for op, k in ops:
            if op == "ins":
                expect.append(k not in model)
                model.add(k)
            elif op == "del":
                expect.append(k in model)
                model.discard(k)
            else:
                expect.append(k in model)

        def body(ctx):
            for op, k in ops:
                if op == "ins":
                    got.append((yield from s.insert(ctx, k)))
                elif op == "del":
                    got.append((yield from s.delete(ctx, k)))
                else:
                    got.append((yield from s.contains(ctx, k)))

        m.add_thread(body)
        m.run()
        assert got == expect
        assert sorted(s.keys_direct()) == sorted(model)


@pytest.mark.parametrize("cls", ALL)
@pytest.mark.parametrize("leases", [False, True])
class TestConcurrent:
    def test_disjoint_inserts_all_present(self, cls, leases):
        m = make_machine(4, leases=leases)
        s = build(cls, m)

        def worker(ctx, tid):
            for i in range(8):
                ok = yield from s.insert(ctx, tid * 100 + i)
                assert ok

        for tid in range(4):
            m.add_thread(worker, tid)
        m.run()
        m.check_coherence_invariants()
        expected = sorted(t * 100 + i for t in range(4) for i in range(8))
        assert sorted(s.keys_direct()) == expected

    def test_racing_inserts_same_keys_exactly_once(self, cls, leases):
        """All threads insert the same keys; each key ends up present
        exactly once, and exactly one thread won each insert."""
        m = make_machine(4, leases=leases)
        s = build(cls, m)
        wins = []

        def worker(ctx):
            w = 0
            for k in range(10):
                ok = yield from s.insert(ctx, k)
                if ok:
                    w += 1
            wins.append(w)

        for _ in range(4):
            m.add_thread(worker)
        m.run()
        m.check_coherence_invariants()
        assert sorted(s.keys_direct()) == list(range(10))
        assert sum(wins) == 10

    def test_mixed_workload_preserves_invariants(self, cls, leases):
        m = make_machine(8, leases=leases)
        s = build(cls, m)
        s.prefill(range(0, 64, 2))
        for _ in range(8):
            m.add_thread(s.mixed_worker, 30, 64)
        m.run()
        m.check_coherence_invariants()
        keys = s.keys_direct()
        assert len(keys) == len(set(keys))         # no duplicates
        assert all(0 <= k < 64 for k in keys)
        if cls in SORTED:
            assert keys == sorted(keys)            # list order intact


class TestHarrisSpecifics:
    def test_marked_nodes_not_visible(self):
        """contains() must not report a logically deleted node."""
        m = make_machine(2, leases=False)
        s = HarrisList(m)
        s.prefill([1, 2, 3])
        out = []

        def deleter(ctx):
            yield from s.delete(ctx, 2)

        def checker(ctx):
            from repro.core.isa import Work
            yield Work(2000)
            out.append((yield from s.contains(ctx, 2)))

        m.add_thread(deleter)
        m.add_thread(checker)
        m.run()
        assert out == [False]


class TestSkipListSpecifics:
    def test_heights_are_bounded(self):
        m = make_machine(1)
        s = LockFreeSkipList(m, max_height=4)

        def body(ctx):
            for k in range(40):
                yield from s.insert(ctx, k)

        m.add_thread(body)
        m.run()
        assert sorted(s.keys_direct()) == list(range(40))


class TestBSTSpecifics:
    def test_delete_leaf_under_root(self):
        m = make_machine(1)
        s = LockedExternalBST(m)
        out = []

        def body(ctx):
            yield from s.insert(ctx, 10)
            out.append((yield from s.delete(ctx, 10)))
            out.append((yield from s.contains(ctx, 10)))
            yield from s.insert(ctx, 20)

        m.add_thread(body)
        m.run()
        assert out == [True, False]
        assert s.keys_direct() == [20]

    def test_inorder_is_sorted(self):
        m = make_machine(1)
        s = LockedExternalBST(m)
        keys = [8, 3, 10, 1, 6, 14, 4, 7, 13]

        def body(ctx):
            for k in keys:
                yield from s.insert(ctx, k)

        m.add_thread(body)
        m.run()
        assert s.keys_direct() == sorted(keys)


class TestHashTableSpecifics:
    def test_colliding_keys_in_one_bucket(self):
        m = make_machine(1)
        s = LockedHashTable(m, num_buckets=2)

        def body(ctx):
            for k in range(10):
                yield from s.insert(ctx, k)
            ok = yield from s.delete(ctx, 4)
            assert ok

        m.add_thread(body)
        m.run()
        assert sorted(s.keys_direct()) == [k for k in range(10) if k != 4]
