"""Regression tests for the lease-manager bookkeeping bugs fixed in this
PR: stale grants evicting a re-leased line, phantom FIFO release events
for never-started leases, and pin-reference miscounting (now a refcount
with a hard underflow error and an exact invariant-checker audit).
"""

import pytest

from conftest import make_machine

from repro import (CAS, InvariantTracer, Lease, Load, MultiLease,
                   ProtocolError, Release, ReleaseAll, Store, Work)


# -- satellite 1: stale grant on a dead entry --------------------------------

class TestStaleGrantAfterReLease:
    def test_stale_grant_does_not_evict_new_tenant(self):
        """A release kills an entry while its grant is in flight; the core
        re-leases the same line; then the stale grant lands.  The dead
        entry must be removed by *identity* -- the new tenant stays."""
        from repro.lease.table import LeaseEntry

        m = make_machine(2)
        mgr = m.cores[0].lease_mgr
        line = 0x40

        old = LeaseEntry(line, 100)
        mgr.table.add(old)
        mgr._unlink_entry(old)              # release path: dead + removed
        assert old.dead and mgr.table.get(line) is None

        new = LeaseEntry(line, 100)         # same line, re-leased
        mgr.table.add(new)
        mgr._granted(old)                   # the stale grant lands now
        # The buggy line-keyed removal deleted `new` here.
        assert mgr.table.get(line) is new
        assert not new.dead

    def test_stale_grant_leaves_no_pin(self):
        """The dead entry's grant must not leak a pin reference."""
        m = make_machine(2)
        addr = m.alloc_var(0)
        mgr = m.cores[0].lease_mgr
        line = m.amap.line_of(addr)

        mgr.lease(addr, 5_000, lambda: None)
        mgr.release_all()
        m.run()
        assert m.cores[0].memunit.l1.pin_count(line) == 0

    def test_release_then_relase_under_invariants(self):
        """The same interleaving through real instructions, audited by the
        (now exact) invariant checker on every event."""
        m = make_machine(2)
        checker = m.attach_tracer(InvariantTracer())
        a, b = m.alloc_var(0), m.alloc_var(0)

        def worker(ctx):
            for _ in range(5):
                yield MultiLease((a, b), 2_000)
                yield Store(a, 1)
                yield ReleaseAll()
                yield Lease(a, 2_000)
                yield Store(a, 2)
                yield Release(a)

        m.add_thread(worker)
        m.add_thread(worker)
        m.run()
        m.check_coherence_invariants()
        assert checker.checks_run > 0


# -- satellite 2: FIFO eviction of a never-started lease ----------------------

class TestFifoReleaseCounterParity:
    def test_started_fifo_eviction_counts_once(self):
        m = make_machine(1, max_num_leases=2)
        a, b, c = (m.alloc_var(0) for _ in range(3))

        def t0(ctx):
            yield Lease(a, 10_000)
            yield Lease(b, 10_000)
            yield Lease(c, 10_000)     # evicts a (started)
            yield ReleaseAll()

        m.add_thread(t0)
        m.run()
        assert m.counters.releases_fifo_eviction == 1

    def test_unstarted_fifo_eviction_is_not_counted(self):
        """Evicting an in-flight (never-started) oldest entry must not
        emit a ``fifo`` release: counter parity with every other release
        path, which all guard on ``entry.started``."""
        from repro.lease.table import LeaseEntry

        m = make_machine(1, max_num_leases=1)
        b = m.alloc_var(0)
        mgr = m.cores[0].lease_mgr
        in_flight = LeaseEntry(m.amap.line_of(b) + 7, 10_000)
        mgr.table.add(in_flight)              # grant still in flight
        assert not in_flight.started

        mgr.lease(b, 10_000, lambda: None)    # table full: evicts it
        assert in_flight.dead
        m.run()
        assert m.counters.releases_fifo_eviction == 0
        # The evictee contributes no release event of any kind.
        assert m.counters.releases_voluntary == 0


# -- satellite 3: pin refcounting ---------------------------------------------

class TestPinRefcount:
    def test_unpin_underflow_raises(self):
        m = make_machine(1)
        l1 = m.cores[0].memunit.l1
        with pytest.raises(ProtocolError, match="unpin underflow"):
            l1.unpin(0x40)

    def test_refcount_pairs_pin_and_unpin(self):
        m = make_machine(1)
        l1 = m.cores[0].memunit.l1
        l1.pin(0x40)
        l1.pin(0x40)
        assert l1.pin_count(0x40) == 2 and l1.is_pinned(0x40)
        l1.unpin(0x40)
        assert l1.pin_count(0x40) == 1 and l1.is_pinned(0x40)
        l1.unpin(0x40)
        assert l1.pin_count(0x40) == 0 and not l1.is_pinned(0x40)
        with pytest.raises(ProtocolError):
            l1.unpin(0x40)

    def test_queued_probe_holds_second_reference(self):
        """While a rival's probe is queued behind a lease the line carries
        two pin references (lease + probe); both drop at release."""
        m = make_machine(2, prioritize_regular_requests=False)
        addr = m.alloc_var(0)
        line = m.amap.line_of(addr)
        l1 = m.cores[0].memunit.l1
        counts = {}

        def holder(ctx):
            yield Lease(addr, 10_000)
            counts["held"] = l1.pin_count(line)
            yield Work(4_000)                  # rival's store queues here
            counts["queued"] = l1.pin_count(line)
            yield Release(addr)
            counts["released"] = l1.pin_count(line)

        def rival(ctx):
            yield Work(2_000)                  # well after the grant
            yield Store(addr, "rival")

        m.add_thread(holder)
        m.add_thread(rival)
        m.run()
        assert m.counters.probes_queued_at_core == 1
        assert counts["held"] == 1
        assert counts["queued"] == 2
        assert counts["released"] == 0

    def test_contended_run_passes_exact_pin_audit(self):
        """The invariant checker now demands pins == (granted live leases
        + queued probes), exactly, on every event of a contended run."""
        m = make_machine(4)
        checker = m.attach_tracer(InvariantTracer())
        addr = m.alloc_var(0)

        def worker(ctx):
            for _ in range(10):
                yield Lease(addr, 5_000)
                v = yield Load(addr)
                ok = yield CAS(addr, v, v + 1)
                yield Release(addr)
                assert ok

        for _ in range(4):
            m.add_thread(worker)
        m.run()
        assert m.peek(addr) == 40
        assert checker.checks_run > 0
