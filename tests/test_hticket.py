"""Hierarchical (cohort) ticket lock."""

import pytest

from conftest import make_machine

from repro import Load, Store, Work
from repro.structures import LockedCounter
from repro.sync import HTicketLock


def test_mutual_exclusion():
    m = make_machine(8, leases=False)
    lock = HTicketLock(m, cluster_size=2)
    shared = m.alloc_var(0)
    in_cs = {"n": 0, "max": 0}

    def worker(ctx):
        for _ in range(10):
            token = yield from lock.acquire(ctx)
            in_cs["n"] += 1
            in_cs["max"] = max(in_cs["max"], in_cs["n"])
            v = yield Load(shared)
            yield Work(25)
            yield Store(shared, v + 1)
            in_cs["n"] -= 1
            yield from lock.release(ctx, token)

    for _ in range(8):
        m.add_thread(worker)
    m.run()
    m.check_coherence_invariants()
    assert in_cs["max"] == 1
    assert m.peek(shared) == 80


def test_single_thread_fast_path():
    m = make_machine(1, leases=False)
    lock = HTicketLock(m)
    order = []

    def worker(ctx):
        for i in range(3):
            token = yield from lock.acquire(ctx)
            order.append(i)
            yield from lock.release(ctx, token)

    m.add_thread(worker)
    m.run()
    assert order == [0, 1, 2]


def test_cohort_handoff_occurs():
    """Two same-cluster threads hammering the lock should hand it off
    locally (handoff counter becomes positive) instead of re-taking the
    global lock each time."""
    m = make_machine(2, leases=False)
    lock = HTicketLock(m, cluster_size=2)
    observed = []

    def worker(ctx):
        for _ in range(12):
            token = yield from lock.acquire(ctx)
            passes = yield Load(lock.handoff[0])
            observed.append(passes)
            yield Work(40)
            yield from lock.release(ctx, token)

    m.add_thread(worker)
    m.add_thread(worker)
    m.run()
    assert max(observed) > 0


def test_handoff_budget_bounds_passing():
    m = make_machine(2, leases=False)
    lock = HTicketLock(m, cluster_size=2, max_handoffs=3)
    observed = []

    def worker(ctx):
        for _ in range(20):
            token = yield from lock.acquire(ctx)
            passes = yield Load(lock.handoff[0])
            observed.append(passes)
            yield Work(40)
            yield from lock.release(ctx, token)

    m.add_thread(worker)
    m.add_thread(worker)
    m.run()
    assert max(observed) <= 3


def test_cross_cluster_fairness():
    """Threads in different clusters all make progress."""
    m = make_machine(4, leases=False)
    lock = HTicketLock(m, cluster_size=2, max_handoffs=2)
    done = []

    def worker(ctx, tag):
        for _ in range(8):
            token = yield from lock.acquire(ctx)
            yield Work(30)
            yield from lock.release(ctx, token)
        done.append(tag)

    for tag in range(4):
        m.add_thread(worker, tag)
    m.run()
    assert sorted(done) == [0, 1, 2, 3]


def test_counter_with_hticket_lock():
    m = make_machine(8, leases=False)
    c = LockedCounter(m, lock="hticket")
    for _ in range(8):
        m.add_thread(c.update_worker, 10)
    m.run()
    m.check_coherence_invariants()
    assert m.peek(c.value_addr) == 80


@pytest.mark.parametrize("clusters", [1, 2, 4])
def test_various_cluster_sizes(clusters):
    m = make_machine(8, leases=False)
    lock = HTicketLock(m, cluster_size=8 // clusters)
    shared = m.alloc_var(0)

    def worker(ctx):
        for _ in range(5):
            token = yield from lock.acquire(ctx)
            v = yield Load(shared)
            yield Store(shared, v + 1)
            yield from lock.release(ctx, token)

    for _ in range(8):
        m.add_thread(worker)
    m.run()
    assert m.peek(shared) == 40


# -- release-time handoff window (PR 9 regression) ----------------------------

@pytest.mark.parametrize("offset", [0, 15, 30, 45, 60, 75, 90, 120, 180])
def test_release_window_late_arrival_is_not_lost(offset):
    """A waiter whose l_ticket FetchAdd lands *after* the releaser's
    waiter-count load sits in the local queue while the release goes down
    the global path.  It must still be admitted -- via the global ticket
    it takes once l_serving reaches it -- not sleep forever.  The offset
    sweep marches the arrival across the whole release sequence; a lost
    wakeup would deadlock the run (SimulationTimeout) and miscount."""
    m = make_machine(2, leases=False)
    lock = HTicketLock(m, cluster_size=2)
    shared = m.alloc_var(0)

    def first(ctx):
        token = yield from lock.acquire(ctx)
        v = yield Load(shared)
        yield Work(50)
        yield Store(shared, v + 1)
        yield from lock.release(ctx, token)

    def late(ctx):
        yield Work(offset)
        token = yield from lock.acquire(ctx)
        v = yield Load(shared)
        yield Store(shared, v + 1)
        yield from lock.release(ctx, token)

    m.add_thread(first)
    m.add_thread(late)
    m.run()
    assert m.peek(shared) == 2
    # Quiescent invariant: no handoff left dangling for a ghost waiter.
    assert m.peek(lock.handoff[0]) == 0


def test_max_handoffs_still_forces_global_release_under_load():
    """Even with a same-cluster waiter always present, the handoff budget
    must periodically push the release down the global path: g_serving
    advances at least once per (max_handoffs + 1) critical sections."""
    m = make_machine(2, leases=False)
    lock = HTicketLock(m, cluster_size=2, max_handoffs=3)
    total_ops = 40

    def worker(ctx):
        for _ in range(total_ops // 2):
            token = yield from lock.acquire(ctx)
            yield Work(40)
            yield from lock.release(ctx, token)

    m.add_thread(worker)
    m.add_thread(worker)
    m.run()
    assert m.peek(lock.g_serving) >= total_ops // (lock.max_handoffs + 1)
    assert m.peek(lock.handoff[0]) == 0
