"""Lock-based counter workload: no lost updates under every lock kind,
lease pattern, and the deliberate-misuse ablation."""

import pytest

from conftest import make_machine

from repro.structures import AtomicCounter, LockedCounter


@pytest.mark.parametrize("lock", ["tts", "ticket", "clh"])
@pytest.mark.parametrize("leases", [False, True])
def test_no_lost_updates(lock, leases):
    m = make_machine(4, leases=leases)
    c = LockedCounter(m, lock=lock)
    for _ in range(4):
        m.add_thread(c.update_worker, 15)
    m.run()
    m.check_coherence_invariants()
    assert m.peek(c.value_addr) == 60
    assert m.counters.ops_completed == 60


def test_unknown_lock_rejected():
    with pytest.raises(ValueError):
        LockedCounter(make_machine(1), lock="quantum")


def test_increment_returns_previous_value():
    m = make_machine(1)
    c = LockedCounter(m)
    out = []

    def body(ctx):
        out.append((yield from c.increment(ctx)))
        out.append((yield from c.increment(ctx)))
        out.append((yield from c.read(ctx)))

    m.add_thread(body)
    m.run()
    assert out == [0, 1, 2]


def test_atomic_counter():
    m = make_machine(4)
    c = AtomicCounter(m)
    for _ in range(4):
        m.add_thread(c.update_worker, 20)
    m.run()
    assert m.peek(c.value_addr) == 80


class TestMisuse:
    """Section 7 'Observations and Limitations': keeping the lease on a
    lock owned by another thread delays the owner's unlock."""

    def test_misuse_is_correct_but_slow_without_prioritization(self):
        def run(misuse):
            m = make_machine(4, leases=True,
                             prioritize_regular_requests=False,
                             max_lease_time=2_000)
            c = LockedCounter(m, misuse=misuse)
            for _ in range(4):
                m.add_thread(c.update_worker, 8)
            cycles = m.run()
            assert m.peek(c.value_addr) == 32
            return cycles

        proper = run(False)
        misused = run(True)
        assert misused > proper * 2    # clear slowdown

    def test_prioritization_mitigates_misuse(self):
        def run(prio):
            m = make_machine(4, leases=True,
                             prioritize_regular_requests=prio,
                             max_lease_time=2_000)
            c = LockedCounter(m, misuse=True)
            for _ in range(4):
                m.add_thread(c.update_worker, 8)
            cycles = m.run()
            assert m.peek(c.value_addr) == 32
            return cycles

        assert run(True) < run(False)

    def test_misuse_still_linearizable(self):
        m = make_machine(8, leases=True)
        c = LockedCounter(m, misuse=True)
        for _ in range(8):
            m.add_thread(c.update_worker, 6)
        m.run()
        m.check_coherence_invariants()
        assert m.peek(c.value_addr) == 48
