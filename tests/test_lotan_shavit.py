"""The literal Lotan-Shavit priority queue: logical deletion (lock-free
TAS on the deleted flag) + Pugh-style physical removal."""

import pytest
from hypothesis import given, settings, strategies as st

from conftest import make_machine

from repro.structures import LotanShavitPQ
from repro.structures.priorityqueue import L_DEL_OFF
from repro.workloads import bench_pq


class TestSequential:
    def test_delete_min_order(self, machine1):
        pq = LotanShavitPQ(machine1)
        out = []

        def body(ctx):
            for k in (5, 1, 9, 3):
                yield from pq.insert(ctx, k)
            for _ in range(5):
                out.append((yield from pq.delete_min(ctx)))

        machine1.add_thread(body)
        machine1.run()
        assert out == [1, 3, 5, 9, None]

    def test_prefill(self, machine1):
        pq = LotanShavitPQ(machine1)
        pq.prefill([7, 2, 9])
        assert pq.keys_direct() == [2, 7, 9]

    @given(st.lists(st.integers(0, 50), max_size=20))
    @settings(max_examples=15, deadline=None)
    def test_property_heapsort(self, keys):
        m = make_machine(1)
        pq = LotanShavitPQ(m)
        out = []

        def body(ctx):
            for k in keys:
                yield from pq.insert(ctx, k)
            for _ in range(len(keys)):
                out.append((yield from pq.delete_min(ctx)))

        m.add_thread(body)
        m.run()
        assert out == sorted(keys)

    def test_duplicate_keys(self, machine1):
        pq = LotanShavitPQ(machine1)
        out = []

        def body(ctx):
            for k in (3, 3, 3, 1):
                yield from pq.insert(ctx, k)
            for _ in range(4):
                out.append((yield from pq.delete_min(ctx)))

        machine1.add_thread(body)
        machine1.run()
        assert out == [1, 3, 3, 3]


class TestConcurrent:
    @pytest.mark.parametrize("leases", [False, True])
    def test_conservation(self, leases):
        m = make_machine(4, leases=leases)
        pq = LotanShavitPQ(m)
        pq.prefill(range(0, 60, 2))
        popped = []

        def worker(ctx, tid):
            for i in range(6):
                yield from pq.insert(ctx, 100 + tid * 10 + i)
            for _ in range(6):
                v = yield from pq.delete_min(ctx)
                if v is not None:
                    popped.append(v)

        for tid in range(4):
            m.add_thread(worker, tid)
        m.run()
        m.check_coherence_invariants()
        remaining = pq.keys_direct()
        assert sorted(popped + remaining) == sorted(
            list(range(0, 60, 2)) +
            [100 + t * 10 + i for t in range(4) for i in range(6)])
        # No key delivered twice (the TAS mark is the linearization).
        assert len(popped) == len(set(zip(popped, range(len(popped))))) \
            and len(popped + remaining) == 54

    def test_small_keys_leave_first(self):
        m = make_machine(4, leases=False)
        pq = LotanShavitPQ(m)
        pq.prefill(range(100))
        popped = []

        def worker(ctx):
            for _ in range(5):
                popped.append((yield from pq.delete_min(ctx)))

        for _ in range(4):
            m.add_thread(worker)
        m.run()
        assert sorted(popped) == list(range(20))

    def test_logical_deletion_hides_key_immediately(self, machine1):
        """A marked node is invisible to keys_direct even before its
        physical removal completes."""
        pq = LotanShavitPQ(machine1)
        pq.prefill([4])
        node = machine1.peek(pq._next(pq.head, 0))
        machine1.write_init(node + L_DEL_OFF, 1)   # simulate marked
        assert pq.keys_direct() == []


def test_bench_pq_lotan_variant():
    r = bench_pq(2, variant="lotan", ops_per_thread=8, prefill=64)
    assert r.ops == 16
    assert r.throughput_ops_per_sec > 0
