"""Cluster checkpoint/restore: ``Cluster.state_dict`` JSON-roundtrips to
a bit-identical continuation at arbitrary mid-run cuts, and the refusal
paths (wrong shape, stale cluster, checkpointing disabled) all raise."""

from __future__ import annotations

import dataclasses
import json
from dataclasses import replace

import pytest

from repro.cluster import ClusterConfig, build_cluster
from repro.config import MachineConfig
from repro.errors import (CheckpointError, CheckpointMismatch,
                          SimulationError)

FAULTY_SPEC = ("loss:p=0.1;dup:p=0.05;partition:p=0.05,len=2000,check=400;"
               "skew:40;delay:min=60,max=160")


def _ccfg(nodes: int = 3, engine: str = "fast",
          spec: str = FAULTY_SPEC) -> ClusterConfig:
    mc = MachineConfig(num_cores=2, seed=11, engine=engine)
    mc = replace(mc, lease=replace(mc.lease, enabled=True))
    return ClusterConfig(nodes=nodes, objects=2, machine=mc,
                         lease_cycles=4_000, renew_margin=1_000,
                         cluster_spec=spec)


def _build(ccfg, structure: str = "counter"):
    return build_cluster(ccfg, structure=structure, ops_per_thread=5)


def _final(cluster) -> dict:
    # RunResult.counters comes from Counters.snapshot(), which already
    # excludes checkpoint bookkeeping, so restored-vs-reference runs
    # compare clean.
    return dataclasses.asdict(cluster.result("roundtrip"))


@pytest.mark.parametrize("structure", ["counter", "treiber"])
@pytest.mark.parametrize("cut", [1, 137, 2_500])
def test_roundtrip_bit_identical(structure, cut):
    ref, _ = _build(_ccfg(), structure)
    ref.run()
    expected = _final(ref)

    a, _ = _build(_ccfg(), structure)
    a.enable_checkpointing()
    a.run(until=cut)
    blob = json.dumps(a.state_dict())
    a.run()
    assert _final(a) == expected  # checkpointing perturbs nothing

    b, _ = _build(_ccfg(), structure)
    b.load_state(json.loads(blob))
    b.run()
    assert _final(b) == expected


def test_roundtrip_compat_engine():
    ref, _ = _build(_ccfg(engine="compat"))
    ref.run()
    expected = _final(ref)

    a, _ = _build(_ccfg(engine="compat"))
    a.enable_checkpointing()
    a.run(until=800)
    blob = json.dumps(a.state_dict())

    b, _ = _build(_ccfg(engine="compat"))
    b.load_state(json.loads(blob))
    b.run()
    assert _final(b) == expected


def test_restore_counts_checkpoint_traffic():
    a, _ = _build(_ccfg(nodes=2))
    a.enable_checkpointing()
    a.run(until=500)
    blob = json.dumps(a.state_dict())

    b, _ = _build(_ccfg(nodes=2))
    b.load_state(json.loads(blob))
    b.run()
    merged = b.merged_counters()
    # One CheckpointRestored per node bus plus one on the cluster bus;
    # snapshot() masks these, but the raw counters must still record them.
    assert merged.checkpoints_restored == 3


# -- refusal paths ------------------------------------------------------------

def test_state_dict_requires_enable_checkpointing():
    a, _ = _build(_ccfg(nodes=2))
    a.run(until=100)
    with pytest.raises(CheckpointError):
        a.state_dict()


def test_enable_checkpointing_after_run_rejected():
    a, _ = _build(_ccfg(nodes=2))
    a.run(until=100)
    with pytest.raises(SimulationError, match="before the cluster"):
        a.enable_checkpointing()


def test_load_rejects_wrong_node_count():
    a, _ = _build(_ccfg(nodes=2))
    a.enable_checkpointing()
    a.run(until=100)
    state = a.state_dict()

    b, _ = _build(_ccfg(nodes=3))
    with pytest.raises(CheckpointMismatch, match="2 nodes, cluster has 3"):
        b.load_state(state)


def test_load_rejects_wrong_schema():
    a, _ = _build(_ccfg(nodes=2))
    a.enable_checkpointing()
    a.run(until=100)
    state = a.state_dict()
    state["schema"] = 99

    b, _ = _build(_ccfg(nodes=2))
    with pytest.raises(CheckpointMismatch, match="schema"):
        b.load_state(state)


def test_load_rejects_already_run_cluster():
    a, _ = _build(_ccfg(nodes=2))
    a.enable_checkpointing()
    a.run(until=100)
    state = a.state_dict()

    b, _ = _build(_ccfg(nodes=2))
    b.run(until=50)
    with pytest.raises(CheckpointError, match="freshly built"):
        b.load_state(state)
