"""Memory substrate: address math, allocator, backing store."""

import pytest
from hypothesis import given, strategies as st

from repro import AllocationError, SimulationError, WORD_SIZE
from repro.mem import AddressMap, Allocator, Memory


class TestAddressMap:
    def setup_method(self):
        self.amap = AddressMap(64, 8)

    def test_line_of(self):
        assert self.amap.line_of(0) == 0
        assert self.amap.line_of(63) == 0
        assert self.amap.line_of(64) == 1
        assert self.amap.line_of(1000) == 15

    def test_base_of_line_roundtrip(self):
        for line in (0, 1, 17, 12345):
            base = self.amap.base_of_line(line)
            assert self.amap.line_of(base) == line
            assert self.amap.offset_in_line(base) == 0

    def test_same_line(self):
        assert self.amap.same_line(0, 63)
        assert not self.amap.same_line(63, 64)

    def test_home_tile_interleaves(self):
        tiles = [self.amap.home_tile(line) for line in range(16)]
        assert tiles == [0, 1, 2, 3, 4, 5, 6, 7] * 2

    def test_words_per_line(self):
        assert self.amap.words_per_line() == 8

    @given(st.integers(min_value=0, max_value=1 << 40))
    def test_property_offset_plus_base(self, addr):
        base = self.amap.base_of_line(self.amap.line_of(addr))
        assert base + self.amap.offset_in_line(addr) == addr


class TestAllocator:
    def setup_method(self):
        self.amap = AddressMap(64, 4)
        self.alloc = Allocator(self.amap)

    def test_never_returns_null(self):
        assert self.alloc.alloc(8) != 0

    def test_line_aligned_words(self):
        a = self.alloc.alloc_words(3)
        assert a % 64 == 0

    def test_alloc_line_distinct_lines(self):
        lines = {self.amap.line_of(self.alloc.alloc_line())
                 for _ in range(50)}
        assert len(lines) == 50

    def test_padded_array(self):
        addrs = self.alloc.alloc_array(10, one_per_line=True)
        assert len({self.amap.line_of(a) for a in addrs}) == 10

    def test_packed_array_is_contiguous(self):
        addrs = self.alloc.alloc_array(10)
        assert [a - addrs[0] for a in addrs] == \
            [i * WORD_SIZE for i in range(10)]

    def test_zero_alloc_rejected(self):
        with pytest.raises(AllocationError):
            self.alloc.alloc(0)

    def test_bad_alignment_rejected(self):
        with pytest.raises(AllocationError):
            self.alloc.alloc(8, align=48)

    def test_exhaustion(self):
        small = Allocator(self.amap, base=0x1000, limit=0x2000)
        with pytest.raises(AllocationError):
            small.alloc(0x2000)

    @given(st.lists(st.integers(min_value=1, max_value=512), max_size=50))
    def test_property_allocations_never_overlap(self, sizes):
        alloc = Allocator(self.amap)
        spans = []
        for nbytes in sizes:
            base = alloc.alloc(nbytes)
            spans.append((base, base + nbytes))
        spans.sort()
        for (a0, a1), (b0, _) in zip(spans, spans[1:]):
            assert a1 <= b0


class TestMemory:
    def setup_method(self):
        self.mem = Memory()

    def test_unwritten_reads_zero(self):
        assert self.mem.read(0x1000) == 0

    def test_write_read(self):
        self.mem.write(0x1000, "hello")
        assert self.mem.read(0x1000) == "hello"

    def test_cas_success(self):
        self.mem.write(8, 5)
        assert self.mem.cas(8, 5, 9)
        assert self.mem.read(8) == 9

    def test_cas_failure_leaves_value(self):
        self.mem.write(8, 5)
        assert not self.mem.cas(8, 4, 9)
        assert self.mem.read(8) == 5

    def test_cas_on_unwritten_expects_zero(self):
        assert self.mem.cas(16, 0, 1)

    def test_fetch_add(self):
        assert self.mem.fetch_add(8, 3) == 0
        assert self.mem.fetch_add(8, 4) == 3
        assert self.mem.read(8) == 7

    def test_swap(self):
        assert self.mem.swap(8, "x") == 0
        assert self.mem.swap(8, "y") == "x"

    def test_misaligned_rejected(self):
        with pytest.raises(SimulationError):
            self.mem.read(3)
        with pytest.raises(SimulationError):
            self.mem.write(-8, 1)

    def test_len_and_touched(self):
        self.mem.write(8, 1)
        self.mem.write(16, 2)
        assert len(self.mem) == 2
        assert set(self.mem.touched()) == {8, 16}

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(-5, 5))))
    def test_property_matches_dict_model(self, ops):
        """Memory behaves exactly like a defaultdict(int) under writes."""
        model: dict[int, int] = {}
        for slot, val in ops:
            addr = slot * WORD_SIZE
            self.mem.write(addr, val)
            model[addr] = val
        for addr, val in model.items():
            assert self.mem.read(addr) == val
