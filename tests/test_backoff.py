"""Backoff policies."""

from conftest import make_machine

from repro.sync import ExponentialBackoff, LinearBackoff, NoBackoff


def run_waits(m, policy, attempts):
    """Execute policy.wait for each attempt; returns elapsed cycles."""
    marks = []

    def body(ctx):
        for attempt in attempts:
            start = ctx.machine.now
            yield from policy.wait(ctx, attempt)
            marks.append(ctx.machine.now - start)

    m.add_thread(body)
    m.run()
    return marks


def test_no_backoff_zero_delay():
    m = make_machine(1)
    assert run_waits(m, NoBackoff(), [1, 5, 10]) == [0, 0, 0]


def test_linear_backoff_proportional():
    m = make_machine(1)
    waits = run_waits(m, LinearBackoff(step=10, cap=1000), [1, 2, 5])
    assert waits == [10, 20, 50]


def test_linear_backoff_caps():
    m = make_machine(1)
    waits = run_waits(m, LinearBackoff(step=10, cap=35), [100])
    assert waits == [35]


def test_linear_backoff_zero_attempt_no_yield():
    m = make_machine(1)
    assert run_waits(m, LinearBackoff(step=10), [0]) == [0]


def test_exponential_backoff_grows_and_caps():
    m = make_machine(1)
    policy = ExponentialBackoff(min_delay=16, max_delay=256)
    waits = run_waits(m, policy, list(range(12)))
    assert all(16 <= w <= 256 for w in waits)


def test_exponential_backoff_deterministic_per_thread_rng():
    def collect():
        m = make_machine(1, seed=5)
        return run_waits(m, ExponentialBackoff(), [1, 2, 3, 4])

    assert collect() == collect()
