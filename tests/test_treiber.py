"""Treiber stack: sequential semantics, concurrent conservation, and the
Figure 1 lease behaviour."""

import pytest
from hypothesis import given, settings, strategies as st

from conftest import make_machine

from repro.structures import TreiberStack


def run_single(m, script):
    """Run `script(stack)` as the only thread; returns collected results."""
    stack = TreiberStack(m)
    out = []

    def body(ctx):
        yield from script(ctx, stack, out)

    m.add_thread(body)
    m.run()
    m.check_coherence_invariants()
    return stack, out


class TestSequential:
    def test_lifo_order(self, machine1):
        def script(ctx, stack, out):
            for v in (1, 2, 3):
                yield from stack.push(ctx, v)
            for _ in range(3):
                v = yield from stack.pop(ctx)
                out.append(v)

        _, out = run_single(machine1, script)
        assert out == [3, 2, 1]

    def test_pop_empty_returns_none(self, machine1):
        def script(ctx, stack, out):
            out.append((yield from stack.pop(ctx)))

        _, out = run_single(machine1, script)
        assert out == [None]

    def test_interleaved_push_pop(self, machine1):
        def script(ctx, stack, out):
            yield from stack.push(ctx, "a")
            out.append((yield from stack.pop(ctx)))
            yield from stack.push(ctx, "b")
            yield from stack.push(ctx, "c")
            out.append((yield from stack.pop(ctx)))
            out.append((yield from stack.pop(ctx)))
            out.append((yield from stack.pop(ctx)))

        _, out = run_single(machine1, script)
        assert out == ["a", "c", "b", None]

    def test_prefill_order(self, machine1):
        stack = TreiberStack(machine1)
        stack.prefill([1, 2, 3])
        assert stack.drain_direct() == [3, 2, 1]

    @given(st.lists(st.sampled_from(["push", "pop"]), max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_list_model(self, ops):
        """Single-threaded stack behaves exactly like a Python list."""
        m = make_machine(1)
        stack = TreiberStack(m)
        model = []
        expect = []

        def body(ctx):
            for i, op in enumerate(ops):
                if op == "push":
                    yield from stack.push(ctx, i)
                else:
                    v = yield from stack.pop(ctx)
                    got.append(v)

        got = []
        for i, op in enumerate(ops):
            if op == "push":
                model.append(i)
            else:
                expect.append(model.pop() if model else None)
        m.add_thread(body)
        m.run()
        assert got == expect
        assert stack.drain_direct() == list(reversed(model))


class TestConcurrent:
    @pytest.mark.parametrize("leases", [False, True])
    def test_conservation(self, leases):
        """pushes - pops(successful) == final size; no duplicates, no
        losses."""
        m = make_machine(4, leases=leases)
        stack = TreiberStack(m)
        popped = []

        def worker(ctx, tid):
            mine = []
            for i in range(10):
                yield from stack.push(ctx, (tid, i))
            for _ in range(5):
                v = yield from stack.pop(ctx)
                if v is not None:
                    mine.append(v)
            popped.extend(mine)

        for tid in range(4):
            m.add_thread(worker, tid)
        m.run()
        m.check_coherence_invariants()
        remaining = stack.drain_direct()
        all_values = popped + remaining
        assert len(all_values) == 40
        assert len(set(all_values)) == 40      # no duplication

    def test_lease_eliminates_cas_failures(self):
        m = make_machine(8, leases=True)
        stack = TreiberStack(m)
        stack.prefill(range(50))
        for _ in range(8):
            m.add_thread(stack.update_worker, 20)
        m.run()
        assert m.counters.cas_failures == 0

    def test_baseline_has_cas_failures(self):
        m = make_machine(8, leases=False)
        stack = TreiberStack(m)
        stack.prefill(range(50))
        for _ in range(8):
            m.add_thread(stack.update_worker, 20)
        m.run()
        assert m.counters.cas_failures > 0

    def test_lease_improves_throughput_under_contention(self):
        def run(leases):
            m = make_machine(16, leases=leases)
            stack = TreiberStack(m)
            stack.prefill(range(50))
            for _ in range(16):
                m.add_thread(stack.update_worker, 20)
            return m.run()

        assert run(True) < run(False) / 2   # at least 2x faster

    def test_same_code_identical_semantics_with_and_without_lease(self):
        """Both modes produce valid stacks with the same op counts."""
        finals = []
        for leases in (False, True):
            m = make_machine(4, leases=leases)
            stack = TreiberStack(m)

            def worker(ctx, tid):
                for i in range(8):
                    yield from stack.push(ctx, (tid, i))
                    yield from stack.pop(ctx)

            for tid in range(4):
                m.add_thread(worker, tid)
            m.run()
            finals.append(len(stack.drain_direct()))
        assert finals == [0, 0]
