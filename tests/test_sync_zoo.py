"""Contention-management zoo: Reciprocating Lock, DHM backoff wiring,
software MCAS structures, the adaptive lease controller, and the
``lease_lock_acquire`` bugfixes (PR 9's regression tests)."""

import pytest

from conftest import make_machine

from repro import Load, Store, Work
from repro.core.isa import Lease, Release
from repro.structures import (CasCounter, LockedCounter, McasCounter,
                              McasQueue, McasStack, TreiberStack)
from repro.sync import (AdaptiveLeaseController, DhmBackoff, Mcas,
                        ReciprocatingLock, TTSLock, managed_word)
from repro.sync.locks import SPIN_PAUSE, lease_lock_acquire, lease_lock_release
from repro.trace import events as ev
from repro.workloads import SYNC_POLICIES, SYNC_STRUCTURES, bench_sync_ablation


# -- Reciprocating Lock -------------------------------------------------------

def _hammer(m, lock, num_threads=4, ops=12, hold=25):
    shared = m.alloc_var(0)
    in_cs = {"n": 0, "max": 0}

    def worker(ctx):
        for _ in range(ops):
            token = yield from lock.acquire(ctx)
            in_cs["n"] += 1
            in_cs["max"] = max(in_cs["max"], in_cs["n"])
            v = yield Load(shared)
            yield Work(hold)
            yield Store(shared, v + 1)
            in_cs["n"] -= 1
            yield from lock.release(ctx, token)

    for _ in range(num_threads):
        m.add_thread(worker)
    m.run()
    m.check_coherence_invariants()
    return shared, in_cs


def test_reciprocating_mutual_exclusion():
    m = make_machine(4, leases=False)
    lock = ReciprocatingLock(m)
    shared, in_cs = _hammer(m, lock)
    assert in_cs["max"] == 1
    assert m.peek(shared) == 48


def test_reciprocating_uncontended_leaves_lock_free():
    m = make_machine(1, leases=False)
    lock = ReciprocatingLock(m)
    _hammer(m, lock, num_threads=1, ops=5)
    assert m.peek(lock.addr) == 0


def test_reciprocating_admits_whole_segment_locally():
    """Once a segment is detached, succession flows through waiter gates:
    the arrivals word is only CASed once per segment, so under steady
    2-thread contention the holder hands off without re-fighting the
    global word every time (far fewer lock_failed events than ops)."""
    m = make_machine(2, leases=False)
    lock = ReciprocatingLock(m)
    shared, _ = _hammer(m, lock, num_threads=2, ops=20, hold=60)
    assert m.peek(shared) == 40
    assert m.counters.lock_acquire_failures < 40


def test_reciprocating_all_threads_progress():
    m = make_machine(4, leases=False)
    lock = ReciprocatingLock(m)
    done = []

    def worker(ctx, tag):
        for _ in range(6):
            token = yield from lock.acquire(ctx)
            yield Work(30)
            yield from lock.release(ctx, token)
        done.append(tag)

    for tag in range(4):
        m.add_thread(worker, tag)
    m.run()
    assert sorted(done) == [0, 1, 2, 3]


# -- lease_lock_acquire: the attempt/backoff bugfix ---------------------------

class _RecordingBackoff:
    """Backoff double that records the attempt numbers and reset calls it
    receives (the pre-fix code neither threaded attempts nor accepted a
    backoff at all, so these tests fail on it)."""

    def __init__(self):
        self.attempts = []
        self.resets = []

    def wait(self, ctx, attempt, addr=None):
        self.attempts.append((ctx.tid, attempt))
        yield Work(SPIN_PAUSE)

    def reset(self, ctx=None, addr=None):
        self.resets.append((None if ctx is None else ctx.tid, addr))


def _contended_counter(m, lock, *, backoff=None, threads=4, ops=8):
    shared = m.alloc_var(0)

    def worker(ctx):
        for _ in range(ops):
            yield from lease_lock_acquire(ctx, lock, backoff=backoff)
            v = yield Load(shared)
            yield Work(40)
            yield Store(shared, v + 1)
            yield from lease_lock_release(ctx, lock)

    for _ in range(threads):
        m.add_thread(worker)
    m.run()
    return shared


def test_lease_lock_acquire_passes_increasing_attempts_to_backoff():
    """Regression (pre-fix: ``attempt`` was tracked but never used, and no
    backoff could be supplied): failed tries must reach the policy as
    1, 2, 3, ... so attempt-proportional backoffs actually escalate."""
    m = make_machine(4, leases=False)
    lock = TTSLock(m)
    rec = _RecordingBackoff()
    shared = _contended_counter(m, lock, backoff=rec)
    assert m.peek(shared) == 32
    assert rec.attempts, "contended run must exercise the backoff"
    streaks = {}
    for tid, attempt in rec.attempts:
        # Within one acquisition, attempts count up from 1 contiguously.
        expected = streaks.get(tid, 0) + 1
        assert attempt in (1, expected)
        streaks[tid] = attempt
    assert any(a > 1 for _, a in rec.attempts)


def test_lease_lock_acquire_resets_backoff_on_success():
    """Regression: every successful acquisition must inform the policy
    (the Backoff.reset protocol was previously dead code)."""
    m = make_machine(4, leases=False)
    lock = TTSLock(m)
    rec = _RecordingBackoff()
    _contended_counter(m, lock, backoff=rec)
    assert len(rec.resets) == 32            # one per successful acquire
    assert all(addr == lock.addr for _, addr in rec.resets)


def _prefix_acquire(ctx, lock, lease_time=1 << 62):
    """The pre-fix spin loop, inlined verbatim (fixed SPIN_PAUSE between
    tries, no backoff hook)."""
    while True:
        yield Lease(lock.addr, lease_time)
        ok = yield from lock.try_acquire(ctx)
        if ok:
            return None
        yield Release(lock.addr)
        yield Work(SPIN_PAUSE)


@pytest.mark.parametrize("leases", [False, True])
def test_lease_lock_acquire_default_is_bit_identical_to_prefix(leases):
    """The default (no-backoff) path must stay cycle-for-cycle identical
    to the pre-fix loop: the bugfix may not perturb existing figures."""
    def run(acquire):
        m = make_machine(4, leases=leases, seed=11)
        lock = TTSLock(m)
        shared = m.alloc_var(0)

        def worker(ctx):
            for _ in range(8):
                yield from acquire(ctx, lock)
                v = yield Load(shared)
                yield Work(40)
                yield Store(shared, v + 1)
                yield from lease_lock_release(ctx, lock)

        for _ in range(4):
            m.add_thread(worker)
        m.run()
        return m.sim.now, m.sim.events_processed, m.peek(shared)

    fixed = run(lambda ctx, lock: lease_lock_acquire(ctx, lock))
    prefix = run(_prefix_acquire)
    assert fixed == prefix


# -- DhmBackoff wiring into the structures ------------------------------------

def test_treiber_resets_dhm_backoff_at_success_points():
    """The shared DhmBackoff instance must see decay at op completion, so
    per-(thread, line) levels drain instead of ratcheting to max."""
    m = make_machine(4, leases=False)
    bo = DhmBackoff(slice_cycles=32, max_level=6)
    s = TreiberStack(m, backoff=bo)
    s.prefill(range(8))
    for _ in range(4):
        m.add_thread(s.update_worker, 10)
    m.run()
    levels = [bo.level(type("C", (), {"tid": t})(), s.head) for t in range(4)]
    assert all(lvl < bo.max_level for lvl in levels)


def test_dhm_backoff_shared_instance_keys_per_thread_and_line():
    """One shared policy instance must keep (tid, addr) state independent:
    thread A's failures on line X never inflate thread B's waits, nor A's
    own waits on line Y."""
    m = make_machine(2, leases=False)
    bo = DhmBackoff(slice_cycles=16, max_level=8, decay=1)
    waits = {}

    def worker(ctx, addr, attempts):
        for a in range(1, attempts + 1):
            start = ctx.machine.now
            yield from bo.wait(ctx, a, addr)
            waits.setdefault((ctx.tid, addr), []).append(
                ctx.machine.now - start)

    m.add_thread(worker, 0x1000, 4)
    m.add_thread(worker, 0x2000, 2)
    m.run()
    assert waits[(0, 0x1000)] == [16, 32, 48, 64]   # levels 1..4
    assert waits[(1, 0x2000)] == [16, 32]           # independent ramp
    # Success-side decay is observable through level(); full reset clears.
    ctx0 = type("C", (), {"tid": 0})()
    assert bo.level(ctx0, 0x1000) == 4
    bo.reset(ctx0, 0x1000)
    assert bo.level(ctx0, 0x1000) == 3
    bo.reset()
    assert bo.level(ctx0, 0x1000) == 0


# -- CAS counter --------------------------------------------------------------

@pytest.mark.parametrize("leases", [False, True])
def test_cas_counter_no_lost_updates(leases):
    m = make_machine(4, leases=leases)
    c = CasCounter(m, backoff=DhmBackoff())
    for _ in range(4):
        m.add_thread(c.update_worker, 12)
    m.run()
    m.check_coherence_invariants()
    assert m.peek(c.value_addr) == 48


# -- software MCAS ------------------------------------------------------------

def test_mcas_counter_increments_two_words_atomically():
    m = make_machine(4, leases=False)
    c = McasCounter(m)
    for _ in range(4):
        m.add_thread(c.update_worker, 10)
    m.run()
    m.check_coherence_invariants()
    assert c.peek_value() == 40
    assert c.peek_ops() == 40
    stats = c.stats()
    assert stats["mcas_ops"] >= 40


def test_mcas_stack_push_pop_keeps_count_coherent():
    m = make_machine(4, leases=False)
    s = McasStack(m)
    s.prefill([100, 101, 102])
    for _ in range(4):
        m.add_thread(s.update_worker, 8)
    m.run()
    m.check_coherence_invariants()
    # update_worker alternates push/pop, so the population is unchanged.
    assert s._count_direct() == 3
    assert len(s.drain_direct()) == 3


def test_mcas_queue_fifo_and_count():
    m = make_machine(4, leases=False)
    q = McasQueue(m)
    q.prefill([7, 8, 9])
    for _ in range(4):
        m.add_thread(q.update_worker, 8)
    m.run()
    m.check_coherence_invariants()
    drained = q.drain_direct()
    assert len(drained) == 3
    assert drained[0] == 7 or drained[0] >= (0 << 32)  # prefix preserved


def test_mcas_failed_op_restores_exact_cell_state():
    """A FAILed MCAS (stale expected) must leave every word untouched."""
    m = make_machine(2, leases=False)
    mc = Mcas(m)
    a = m.alloc_var(managed_word(5))
    b = m.alloc_var(managed_word(6))
    out = {}

    def loser(ctx):
        # Stale expected value for b -> the MCAS must fail cleanly.
        out["ok"] = yield from mc.mcas(
            ctx, [(a, managed_word(5), managed_word(50)),
                  (b, managed_word(999), managed_word(60))])

    m.add_thread(loser)
    m.run()
    assert out["ok"] is False
    assert m.peek(a) == managed_word(5)
    assert m.peek(b) == managed_word(6)
    assert mc.stats()["mcas_failures"] == 1


@pytest.mark.parametrize("helping", ["eager", "aware"])
def test_mcas_helping_modes_are_both_correct(helping):
    m = make_machine(4, leases=False)
    c = McasCounter(m, helping=helping)
    for _ in range(4):
        m.add_thread(c.update_worker, 10)
    m.run()
    assert c.peek_value() == 40


# -- adaptive lease controller ------------------------------------------------

class _LineIdent:
    class amap:
        @staticmethod
        def line_of(addr):
            return addr & ~63


def _released(line, mode):
    e = ev.LeaseReleased(0, line, mode)
    return e


def test_adaptive_controller_doubles_on_expiry_and_caps():
    ctl = AdaptiveLeaseController(initial=100, min_time=50, max_time=400)
    ctl.bind(_LineIdent())
    for _ in range(5):
        ctl.on_event(_released(0x40, "expired"))
    assert ctl.time_for(0x40) == 400          # 100 -> 200 -> 400 (capped)
    assert ctl.expirations == 5


def test_adaptive_controller_contracts_under_pressure_with_floor():
    ctl = AdaptiveLeaseController(initial=128, min_time=60, max_time=1000,
                                  pressure_high=2)
    ctl.bind(_LineIdent())
    # Quiet voluntary release: no adjustment.
    ctl.on_event(ev.LeaseStarted(0, 0x40, 128))
    ctl.on_event(_released(0x40, "voluntary"))
    assert ctl.time_for(0x40) == 128
    # Pressured tenure (3 queued probes > pressure_high): contract by 1/4.
    ctl.on_event(ev.LeaseStarted(0, 0x40, 128))
    for _ in range(3):
        ctl.on_event(ev.LeaseProbeQueued(1, 0x40))
    ctl.on_event(_released(0x40, "voluntary"))
    assert ctl.time_for(0x40) == 96
    # Broken leases always contract, down to the floor.
    for _ in range(10):
        ctl.on_event(_released(0x40, "broken"))
    assert ctl.time_for(0x40) == 60
    assert ctl.contractions >= 2


def test_adaptive_controller_time_for_is_per_line():
    ctl = AdaptiveLeaseController(initial=100, max_time=1600)
    ctl.bind(_LineIdent())
    ctl.on_event(_released(0x40, "expired"))
    assert ctl.time_for(0x44) == 200          # same line as 0x40
    assert ctl.time_for(0x80) == 100          # untouched line


def test_adaptive_controller_state_roundtrip():
    ctl = AdaptiveLeaseController(initial=100)
    ctl.bind(_LineIdent())
    ctl.on_event(ev.LeaseStarted(0, 0x40, 100))
    ctl.on_event(ev.ProbeDeferred(1, 0x40))
    ctl.on_event(_released(0x40, "expired"))
    clone = AdaptiveLeaseController(initial=100)
    clone.bind(_LineIdent())
    clone.load_state(ctl.state_dict())
    assert clone.time_for(0x40) == ctl.time_for(0x40)
    assert clone.stats() == ctl.stats()


def test_adaptive_lease_end_to_end_counter():
    m = make_machine(4, leases=True, max_lease_time=600)
    ctl = AdaptiveLeaseController(initial=120, min_time=40, max_time=600)
    m.attach_tracer(ctl)
    c = LockedCounter(m, critical_work=8, lease_policy=ctl)
    for _ in range(4):
        m.add_thread(c.update_worker, 10)
    m.run()
    assert m.peek(c.value_addr) == 40
    assert ctl.stats()["adaptive_lines"] >= 1


# -- the sweep driver ---------------------------------------------------------

@pytest.mark.parametrize("policy", SYNC_POLICIES)
def test_sync_ablation_counter_every_policy(policy):
    res = bench_sync_ablation(4, structure="counter", policy=policy,
                              ops_per_thread=8)
    assert res.ops == 32
    assert res.name == f"sync/counter/{policy}"


@pytest.mark.parametrize("structure", SYNC_STRUCTURES)
def test_sync_ablation_structures_under_mcas_and_reciprocating(structure):
    for policy in ("mcas-helping", "reciprocating"):
        res = bench_sync_ablation(4, structure=structure, policy=policy,
                                  ops_per_thread=6, prefill=8)
        assert res.ops == 24


def test_sync_ablation_rejects_unknown_arms():
    with pytest.raises(ValueError, match="unknown structure"):
        bench_sync_ablation(2, structure="btree")
    with pytest.raises(ValueError, match="unknown policy"):
        bench_sync_ablation(2, policy="hope")


def test_sync_ablation_experiment_registered_with_full_grid():
    from repro.harness import EXPERIMENTS

    exp = EXPERIMENTS["sync_ablation"]
    assert len(exp.variants) == len(SYNC_POLICIES) * len(SYNC_STRUCTURES)
    assert "treiber:adaptive-lease" in exp.variants
