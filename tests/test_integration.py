"""Whole-machine integration: multiple structures sharing one machine,
seed sweeps, and cross-seed correctness."""

import pytest

from conftest import make_machine

from repro.structures import (LockedCounter, MichaelScottQueue,
                              TreiberStack)


def test_mixed_structures_on_one_machine():
    """A stack, a queue and a counter driven concurrently on one machine:
    all invariants hold at quiescence."""
    m = make_machine(6)
    stack = TreiberStack(m)
    queue = MichaelScottQueue(m)
    counter = LockedCounter(m)
    stack.prefill(range(20))
    queue.prefill(range(20))

    m.add_thread(stack.update_worker, 20)
    m.add_thread(stack.update_worker, 20)
    m.add_thread(queue.update_worker, 20)
    m.add_thread(queue.update_worker, 20)
    m.add_thread(counter.update_worker, 20)
    m.add_thread(counter.update_worker, 20)
    m.run()
    m.check_coherence_invariants()

    assert m.peek(counter.value_addr) == 40
    s = stack.drain_direct()
    assert len(s) == len(set(s))
    q = queue.drain_direct()
    assert len(q) == len(set(q))
    assert m.counters.ops_completed == 120


@pytest.mark.parametrize("seed", range(5))
def test_seed_sweep_stack_correct(seed):
    m = make_machine(4, seed=seed)
    stack = TreiberStack(m)
    stack.prefill(range(16))
    popped = []

    def worker(ctx, tid):
        for i in range(8):
            yield from stack.push(ctx, (tid, i))
            v = yield from stack.pop(ctx)
            if v is not None:
                popped.append(v)

    for tid in range(4):
        m.add_thread(worker, tid)
    m.run()
    m.check_coherence_invariants()
    everything = popped + stack.drain_direct()
    assert len(everything) == len(set(everything)) == 16 + 32


@pytest.mark.parametrize("seed", range(3))
def test_seed_sweep_queue_correct(seed):
    m = make_machine(4, seed=seed, prioritize_regular_requests=False)
    q = MichaelScottQueue(m)
    taken = []

    def worker(ctx, tid):
        for i in range(6):
            yield from q.enqueue(ctx, (tid, i))
        for _ in range(6):
            v = yield from q.dequeue(ctx)
            if v is not None:
                taken.append(v)

    for tid in range(4):
        m.add_thread(worker, tid)
    m.run()
    m.check_coherence_invariants()
    everything = taken + q.drain_direct()
    assert len(everything) == len(set(everything)) == 24


def test_lease_disabled_and_enabled_agree_on_op_counts():
    """Structural smoke: both modes perform exactly the requested ops."""
    for leases in (False, True):
        m = make_machine(4, leases=leases)
        stack = TreiberStack(m)
        stack.prefill(range(8))
        for _ in range(4):
            m.add_thread(stack.update_worker, 12)
        m.run()
        assert m.counters.ops_completed == 48
