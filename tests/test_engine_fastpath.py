"""Two-tier engine equivalence: the fast engine (time-wheel + batch
advance) must produce *bit-identical* results to the compat engine on
every workload, protocol, lease/fault setting and core count -- plus the
TimeWheel's own queue semantics, the quiescence notify-mode timing, and
the transparent fallbacks (schedule strategy, non-folding sinks).
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.check.perturb import RandomStrategy
from repro.config import MachineConfig
from repro.core.isa import Store, Work
from repro.core.machine import Machine
from repro.engine.event_queue import EventQueue
from repro.engine.wheel import TimeWheel
from repro.errors import SimulationError
from repro.state.checkpoint import build_document, restore_checkpoint
from repro.structures import TreiberStack
from repro.trace import RingBufferTracer
from repro.workloads.driver import bench_stack


def _config(engine: str, *, cores: int = 4, protocol: str = "msi",
            leases: bool = False, faults: str = "", seed: int = 1,
            ) -> MachineConfig:
    cfg = MachineConfig(num_cores=cores, protocol=protocol,
                        fault_spec=faults, seed=seed, engine=engine)
    return replace(cfg, lease=replace(cfg.lease, enabled=leases))


def _storm(cfg: MachineConfig, rounds: int = 12):
    """Every core stores to one line: the densest invalidation traffic."""
    m = Machine(cfg)
    addr = m.alloc_var(0, label="test.storm")

    def body(ctx):
        for i in range(rounds):
            yield Store(addr, i)
        ctx.note_op()

    for _ in range(cfg.num_cores):
        m.add_thread(body)
    return m


def _treiber(cfg: MachineConfig, ops: int = 10):
    m = Machine(cfg)
    s = TreiberStack(m)
    s.prefill(range(16))
    for _ in range(cfg.num_cores):
        m.add_thread(s.update_worker, ops)
    return m


def _run_pair(build, **cfg_kw):
    """Build and run the same workload on both engines; returns both
    machines after asserting the RunResults and event counts match."""
    mf = build(_config("fast", **cfg_kw))
    mc = build(_config("compat", **cfg_kw))
    mf.run()
    mc.run()
    assert mf.result("x") == mc.result("x")
    assert mf.sim.events_processed == mc.sim.events_processed
    assert mf.sim.now == mc.sim.now
    return mf, mc


# ---------------------------------------------------------------------------
# Property: fast == compat over the full feature grid
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    cores=st.integers(min_value=1, max_value=8),
    protocol=st.sampled_from(["msi", "mesi"]),
    leases=st.booleans(),
    faults=st.sampled_from(["", "net_jitter:p=0.05,max=40;dir_nack:p=0.02"]),
    seed=st.integers(min_value=1, max_value=2**20),
)
def test_property_engines_bit_identical(cores, protocol, leases, faults,
                                        seed):
    _run_pair(_treiber, cores=cores, protocol=protocol, leases=leases,
              faults=faults, seed=seed)


@settings(max_examples=10, deadline=None)
@given(
    cores=st.integers(min_value=2, max_value=6),
    rounds=st.integers(min_value=2, max_value=20),
    protocol=st.sampled_from(["msi", "mesi"]),
)
def test_property_storm_bit_identical(cores, rounds, protocol):
    _run_pair(lambda cfg: _storm(cfg, rounds), cores=cores,
              protocol=protocol)


# ---------------------------------------------------------------------------
# Checkpoint: save mid-run on one engine, restore on the other
# ---------------------------------------------------------------------------

@settings(max_examples=8, deadline=None)
@given(
    cut=st.integers(min_value=1, max_value=400),
    leases=st.booleans(),
    protocol=st.sampled_from(["msi", "mesi"]),
)
def test_property_checkpoint_mid_run_cross_engine(cut, leases, protocol):
    """Running to an arbitrary mid-run cycle, checkpointing, and resuming
    on the *other* engine lands on the same final result as an unbroken
    compat run (checkpoints only exist between events, so a batch is
    never split -- its elided prefix is part of the replay log)."""
    whole = _treiber(_config("compat", leases=leases, protocol=protocol))
    whole.run()
    want = whole.result("x")

    m1 = _treiber(_config("fast", leases=leases, protocol=protocol))
    m1.enable_checkpointing()
    m1.run(until=cut)
    doc = build_document(m1)

    m2 = _treiber(_config("compat", leases=leases, protocol=protocol))
    restore_checkpoint(m2, doc)
    m2.run()
    assert m2.result("x") == want
    assert m2.sim.events_processed == whole.sim.events_processed


# ---------------------------------------------------------------------------
# Regression: deferred probe at a miss completion must stop the fold
# ---------------------------------------------------------------------------

def test_deferred_probe_blocks_batch_fold():
    """Two cores storming one line defers a probe behind nearly every data
    arrival; the commit callback runs *before* the probe is applied, so
    the batch path must not fold the following instructions against the
    stale L1 state (found as a live divergence: the fast engine retired a
    whole store run that compat correctly missed)."""
    mf, mc = _run_pair(lambda cfg: _storm(cfg, rounds=3), cores=2)
    # The workload must actually exercise a deferral for the regression
    # to mean anything.
    assert mf.counters.probes_deferred_mid_access > 0


def test_probe_pending_flag_resets():
    m = _storm(_config("fast", cores=2), rounds=3)
    m.run()
    assert all(not c.memunit._probe_pending for c in m.cores)


# ---------------------------------------------------------------------------
# Quiescence: notify mode elides polls without changing the stop point
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("engine", ["fast", "compat"])
def test_quiescence_notify_matches_polling(engine):
    """A machine (notify mode) and a hand-polled simulator running the
    same schedule stop at the same cycle with the same event count."""
    m_notify = _storm(_config(engine, cores=3), rounds=5)
    m_poll = _storm(_config(engine, cores=3), rounds=5)
    # Forcing the poll-mode default back on must not change the outcome,
    # only the number of predicate evaluations.
    m_poll.sim._poll_quiescence = True
    t1 = m_notify.run()
    t2 = m_poll.run()
    assert t1 == t2
    assert m_notify.sim.events_processed == m_poll.sim.events_processed
    assert m_notify.result("q") == m_poll.result("q")


def test_machine_uses_notify_mode():
    m = _storm(_config("fast"), rounds=2)
    assert m.sim._poll_quiescence is False
    m.run()
    assert m.idle_cores == m.config.num_cores


# ---------------------------------------------------------------------------
# Fallbacks: strategies and non-folding sinks
# ---------------------------------------------------------------------------

def test_strategy_forces_compat_engine():
    cfg = _config("fast")
    m = Machine(cfg, schedule_strategy=RandomStrategy(3))
    assert m.engine == "compat"
    assert isinstance(m.sim.queue, EventQueue)


def test_fast_engine_uses_wheel():
    m = Machine(_config("fast"))
    assert m.engine == "fast"
    assert isinstance(m.sim.queue, TimeWheel)


def test_non_folding_sink_disables_batching_but_keeps_identity():
    """A RingBufferTracer records the exact emit stream, so it both (a)
    turns batching off and (b) lets us compare the streams event-for-
    event across engines."""
    ring_f = RingBufferTracer(capacity=100_000)
    ring_c = RingBufferTracer(capacity=100_000)
    mf = _treiber(_config("fast"))
    mf.attach_tracer(ring_f)
    mc = _treiber(_config("compat"))
    mc.attach_tracer(ring_c)
    mf.run()
    mc.run()
    assert mf._batch_ok is False
    assert ([e.to_dict() for e in ring_f.events()]
            == [e.to_dict() for e in ring_c.events()])
    assert mf.result("x") == mc.result("x")


def test_counters_only_sinks_enable_batching():
    m = _treiber(_config("fast"))
    m.run()
    assert m._batch_ok is True


# ---------------------------------------------------------------------------
# TimeWheel unit behavior
# ---------------------------------------------------------------------------

def test_wheel_pops_in_time_then_insertion_order():
    w = TimeWheel()
    w.schedule(5, lambda: None)
    a = w.schedule(1, lambda: None)
    b = w.schedule(1, lambda: None)
    assert w.pop() is a and w.pop() is b
    assert w.pop().time == 5
    assert w.pop() is None


def test_wheel_cancel_and_live_count():
    w = TimeWheel()
    ev1 = w.schedule(2, lambda: None)
    ev2 = w.schedule(2, lambda: None)
    assert len(w) == 2
    w.cancel(ev1)
    w.cancel(ev1)                      # double-cancel is a no-op
    assert len(w) == 1
    assert w.peek_time() == 2
    assert w.pop() is ev2
    assert w.pop() is None


def test_wheel_append_during_drain_is_picked_up():
    """An event scheduled at the *current* cycle during processing joins
    the draining bucket, matching the heap engine's behavior."""
    w = TimeWheel()
    seen = []

    def first():
        seen.append("first")
        w.schedule(3, lambda: seen.append("second"))

    w.schedule(3, first)
    for _ in range(2):
        ev = w.pop()
        ev.fn(*ev.args)
    assert seen == ["first", "second"]
    assert w.pop() is None


def test_wheel_rejects_negative_time():
    with pytest.raises(SimulationError):
        TimeWheel().schedule(-1, lambda: None)


def test_wheel_state_roundtrip_into_heap_queue():
    """The wheel's canonical checkpoint format round-trips through the
    compat EventQueue (and back), preserving order and seq."""
    class _Codec:
        def encode_fn(self, fn):
            return "fn"

        def decode_fn(self, desc):
            return lambda *a: None

        def encode(self, args):
            return list(args)

        def decode(self, enc):
            return tuple(enc)

    w = TimeWheel()
    w.schedule(4, lambda: None)
    cancelled = w.schedule(2, lambda: None)
    w.schedule(2, lambda: None)
    w.cancel(cancelled)
    state = w.state_dict(_Codec())
    assert state["seq"] == 3
    assert [e[0] for e in state["events"]] == [2, 4]    # cancelled dropped

    w2 = TimeWheel()
    w2.load_state(state, _Codec())
    assert len(w2) == 2
    assert w2.next_seq == 3
    assert w2.pop().time == 2
    assert w2.pop().time == 4


def test_wheel_heap_size_counts_pending_entries():
    w = TimeWheel()
    w.schedule(1, lambda: None)
    w.schedule(1, lambda: None)
    ev = w.schedule(9, lambda: None)
    w.cancel(ev)
    assert w.heap_size == 3            # cancelled entries still physical
    w.pop()
    assert w.heap_size == 2


# ---------------------------------------------------------------------------
# run(until) equivalence on the fast loop
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("until", [0, 1, 37, 150, 10_000])
def test_run_until_slicing_matches_compat(until):
    mf = _storm(_config("fast", cores=3), rounds=4)
    mc = _storm(_config("compat", cores=3), rounds=4)
    tf = mf.run(until=until)
    tc = mc.run(until=until)
    assert tf == tc
    assert mf.sim.events_processed == mc.sim.events_processed
    # Finish both; the slice must not have perturbed the tail.
    mf.run()
    mc.run()
    assert mf.result("x") == mc.result("x")


def test_incremental_until_equals_single_run_fast_engine():
    whole = _storm(_config("fast", cores=3), rounds=4)
    whole.run()
    sliced = _storm(_config("fast", cores=3), rounds=4)
    t = 0
    while sliced.idle_cores < sliced.config.num_cores:
        t += 53
        sliced.run(until=t)
    assert sliced.result("x") == whole.result("x")
    assert sliced.sim.events_processed == whole.sim.events_processed


# ---------------------------------------------------------------------------
# The harness path (sweep-cell shape) stays identical too
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("variant", ["base", "lease", "backoff"])
def test_bench_stack_identical_across_engines(variant):
    rf = bench_stack(4, ops_per_thread=8, variant=variant)
    rc = bench_stack(4, ops_per_thread=8, variant=variant,
                     config=replace(MachineConfig(), engine="compat"))
    assert rf == rc
