"""Model-based testing of the search structures.

Two layers, both against the plain-Python sequential set model:

* single-threaded: a random operation sequence must return exactly what
  the model returns, op for op, and ``keys_direct()`` must equal the
  model's contents after the run;
* concurrent: 4 threads of the stock mixed workload produce a history
  that must linearize against :class:`~repro.check.models.SetModel`,
  with the structure's final ``keys_direct()`` as the observed final
  state.
"""

import random

import pytest
from conftest import make_machine

from repro.check import HistoryRecorder, SetModel, check_history
from repro.structures.bst import LockedExternalBST
from repro.structures.harris_list import HarrisList
from repro.structures.hashtable import LockedHashTable
from repro.structures.skiplist import LockFreeSkipList

STRUCTURES = {
    "harris": HarrisList,
    "skiplist": LockFreeSkipList,
    "hashtable": LockedHashTable,
    "bst": LockedExternalBST,
}

PREFILL = [2, 5, 8, 11]


def _build(name, machine):
    s = STRUCTURES[name](machine)
    s.prefill(PREFILL)
    return s


# -- single-threaded model equivalence ---------------------------------------

def _model_driver(ctx, structure, ops, seed, mismatches):
    model = set(PREFILL)
    rng = random.Random(seed)
    for step in range(ops):
        key = rng.randrange(16)
        roll = rng.random()
        if roll < 0.4:
            got = yield from structure.insert(ctx, key)
            want = key not in model
            model.add(key)
        elif roll < 0.7:
            got = yield from structure.delete(ctx, key)
            want = key in model
            model.discard(key)
        else:
            got = yield from structure.contains(ctx, key)
            want = key in model
        if got is not want:
            mismatches.append((step, key, got, want))
    mismatches.append(("final_model", sorted(model)))


@pytest.mark.parametrize("name", sorted(STRUCTURES))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_sequential_ops_match_set_model(name, seed):
    m = make_machine(1)
    s = _build(name, m)
    log = []
    m.add_thread(_model_driver, s, 60, seed, log)
    m.run()
    final_model = log.pop()[1]
    assert log == [], f"{name}: op results diverged from the model: {log}"
    assert sorted(s.keys_direct()) == final_model


# -- concurrent linearizability ----------------------------------------------

@pytest.mark.parametrize("name", sorted(STRUCTURES))
@pytest.mark.parametrize("leases", [False, True])
def test_concurrent_history_linearizes(name, leases):
    m = make_machine(4, leases=leases)
    hist = m.attach_tracer(HistoryRecorder())
    s = _build(name, m)
    for _ in range(4):
        m.add_thread(s.mixed_worker, 8, 12, 60)   # 60% updates, keys 0..11
    m.run()
    m.check_coherence_invariants()
    hist.validate()
    assert len(hist.records) == 32
    res = check_history(hist.records, lambda: SetModel(PREFILL),
                        final_state=frozenset(s.keys_direct()))
    assert res.decided, f"{name}: checker ran out of budget"
    assert res.ok, f"{name}: {res.reason}"
